#include "svc/server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "apps/triangle.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "grid/dist.hpp"
#include "grid/grid3d.hpp"
#include "kernels/semiring.hpp"
#include "obs/report.hpp"
#include "summa/batched.hpp"
#include "svc/admission.hpp"
#include "vmpi/faults.hpp"

namespace casp::svc {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kThrottled:
      return "throttled";
  }
  return "unknown";
}

Server::Server(ServerOptions options)
    : options_(options),
      pool_(options.pool_ranks),
      busy_(static_cast<std::size_t>(options.pool_ranks), 0) {}

TenantLedger& Server::tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    TenantQuota quota;
    auto qi = options_.quotas.find(name);
    if (qi != options_.quotas.end()) quota = qi->second;
    it = tenants_
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple(name, quota))
             .first;
  }
  return it->second;
}

obs::Json Server::tenant_report(const std::string& name) {
  return tenant(name).report();
}

obs::Json Server::job_reports_json(bool deterministic) const {
  obs::Json arr = obs::Json::array();
  for (const std::string& id : order_) {
    const obs::JobReport& rep = jobs_.at(id)->report;
    arr.push_back(deterministic ? rep.deterministic_json() : rep.to_json());
  }
  return arr;
}

std::string Server::submit(JobSpec spec) {
  spec.validate();
  if (spec.ranks > options_.pool_ranks) {
    std::ostringstream os;
    os << "svc: job wants " << spec.ranks << " ranks but the pool has "
       << options_.pool_ranks;
    throw InvalidArgument(os.str());
  }
  if (spec.job_id.empty())
    spec.job_id = "job-" + std::to_string(next_job_);
  ++next_job_;
  if (jobs_.count(spec.job_id) != 0)
    throw InvalidArgument("svc: duplicate job id \"" + spec.job_id + "\"");

  auto holder = std::make_unique<JobRecord>();
  JobRecord& rec = *holder;
  rec.spec = std::move(spec);
  rec.in_a = rec.spec.a.materialize();
  switch (rec.spec.op) {
    case JobOp::kSpGemm:
      if (rec.spec.aat)
        rec.in_b = rec.in_a.transpose();
      else if (rec.spec.b.empty())
        rec.in_b = rec.in_a;
      else
        rec.in_b = rec.spec.b.materialize();
      break;
    case JobOp::kMcl:
    case JobOp::kTriangleCount:
      if (rec.in_a.nrows() != rec.in_a.ncols())
        throw InvalidArgument(std::string("svc: ") + to_string(rec.spec.op) +
                              " requires a square input matrix");
      rec.in_b = rec.in_a;
      break;
  }

  const std::string id = rec.spec.job_id;
  jobs_.emplace(id, std::move(holder));
  order_.push_back(id);
  JobRecord& job = *jobs_.at(id);

  // Eq. (2) estimate on a fault-free scratch job (outside the pool).
  AdmissionEstimate est = estimate_admission(job.spec, job.in_a, job.in_b);
  job.admission = est.admission;
  if (!est.fits()) {
    finish(job, JobState::kRejected, est.reason);
    return id;
  }
  job.reserved_bytes = reservation_bytes(job.spec, job.admission);
  job.admission.reserved_bytes = job.reserved_bytes;

  TenantLedger& ledger = tenant(job.spec.tenant);
  if (!ledger.within_memory_quota(job.reserved_bytes)) {
    std::ostringstream os;
    os << "svc: reservation " << job.reserved_bytes
       << " B exceeds tenant \"" << job.spec.tenant << "\" memory quota "
       << ledger.quota().memory_bytes << " B";
    finish(job, JobState::kRejected, os.str());
    return id;
  }
  if (ledger.traffic_exhausted()) {
    std::ostringstream os;
    os << "svc: tenant \"" << job.spec.tenant
       << "\" traffic quota exhausted (" << ledger.traffic_billed()
       << " B logical billed >= quota " << ledger.quota().traffic_bytes
       << " B)";
    finish(job, JobState::kThrottled, os.str());
    return id;
  }
  // Take the reservation now when the quota allows; otherwise the job
  // queues unreserved and the scheduler retries as earlier jobs release.
  if (ledger.reserve(job.reserved_bytes)) job.holds_reservation = true;
  queue_.push(id, job.spec.priority, job.spec.deadline_ms);
  return id;
}

bool Server::cancel(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  if (!queue_.remove(job_id)) return false;  // running or already terminal
  finish(*it->second, JobState::kCancelled, "cancelled by client");
  return true;
}

const JobRecord& Server::wait(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end())
    throw InvalidArgument("svc: unknown job id \"" + job_id + "\"");
  while (!it->second->terminal() && step()) {
  }
  return *it->second;
}

void Server::drain() {
  const int width = effective_concurrency();
  if (width > 1) {
    drain_concurrent(width);
    return;
  }
  while (!queue_.empty() && step()) {
  }
}

int Server::effective_concurrency() const {
  int k = std::max(1, options_.concurrency);
#ifdef CASP_VMPI_SCHED
  // One deterministic-scheduler state exists per process; concurrent jobs
  // would share (and corrupt) it. Serialize while a plan is active.
  if (vmpi::SchedPlan::from_env().has_value()) k = 1;
#endif
  return std::min(k, options_.pool_ranks);
}

const JobRecord* Server::find(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

bool Server::step() {
  std::vector<std::string> deferred;
  bool progressed = false;
  while (!queue_.empty()) {
    const std::string id = queue_.pop();
    JobRecord& rec = *jobs_.at(id);
    TenantLedger& ledger = tenant(rec.spec.tenant);
    if (ledger.traffic_exhausted()) {
      std::ostringstream os;
      os << "svc: tenant \"" << rec.spec.tenant
         << "\" traffic quota exhausted (" << ledger.traffic_billed()
         << " B logical billed >= quota " << ledger.quota().traffic_bytes
         << " B)";
      finish(rec, JobState::kThrottled, os.str());
      progressed = true;
      continue;  // other tenants' jobs keep going
    }
    if (!rec.holds_reservation) {
      if (ledger.reserve(rec.reserved_bytes)) {
        rec.holds_reservation = true;
      } else {
        deferred.push_back(id);
        continue;
      }
    }
    execute(rec);
    progressed = true;
    break;
  }
  for (const std::string& id : deferred)
    queue_.push(id, jobs_.at(id)->spec.priority,
                jobs_.at(id)->spec.deadline_ms);
  if (!progressed && !deferred.empty()) {
    // Defensive: every reservation is held by a queued job, so a full
    // no-progress pass means these reservations can never be satisfied.
    for (const std::string& id : deferred) {
      JobRecord& rec = *jobs_.at(id);
      queue_.remove(id);
      finish(rec, JobState::kRejected,
             "svc: reservation cannot be satisfied under the tenant's "
             "memory quota");
    }
    progressed = true;
  }
  return progressed;
}

namespace {

/// Largest valid grid on at most `avail` ranks, preferring the requested
/// layer count, then the tallest stack that still divides. {0, 0} when not
/// even a 1x1x1 grid fits (avail < 1).
std::pair<int, int> best_shrink(int avail, int want_layers) {
  for (int p = avail; p >= 1; --p) {
    if (want_layers >= 1 && want_layers <= p &&
        Grid3D::valid_shape(p, want_layers))
      return {p, want_layers};
    for (int l = std::min(want_layers, p); l >= 1; --l)
      if (Grid3D::valid_shape(p, l)) return {p, l};
  }
  return {0, 0};
}

/// Fold one executed attempt's traffic into the job's cumulative bill (a
/// degraded job pays for the failed full-grid attempt too).
void fold_billing(obs::JobBilling& total, const obs::JobBilling& attempt) {
  total.messages += attempt.messages;
  total.logical_bytes += attempt.logical_bytes;
  total.shipped_bytes += attempt.shipped_bytes;
  total.restarts += attempt.restarts;
  for (const std::string& k : attempt.recovered_failure_kinds)
    total.recovered_failure_kinds.push_back(k);
}

}  // namespace

/// Per-job execution state shared by the serial and concurrent drivers.
/// One Exec spans all rounds of one job: the grid the next attempt runs
/// on, the redistributed-resume cache, the cumulative bill and recovery
/// evidence, and — while a ticket is in flight — the supervision chain's
/// accumulators (the incremental form of detail::supervise, so an attempt
/// can be collected and relaunched without blocking the launcher between
/// whole chains).
struct Server::Exec {
  JobRecord* rec = nullptr;
  /// Grid the current round runs on; shrinks after a permanent loss,
  /// regrows after probationers are admitted.
  int run_ranks = 0;
  int run_layers = 0;
  /// Degraded/regrown resume state: the redistributed checkpoint cache
  /// (owned here, borrowed by the attempt through SummaOptions::resume).
  ckpt::ResumeCache cache;
  const ckpt::ResumeCache* resume = nullptr;
  /// Fault kinds that already fired a shrink are disarmed on relaunch — a
  /// permanent crash is one event, not a property of every future attempt.
  std::vector<std::string> disarm;
  obs::JobBilling bill;
  obs::RecoveryReport recovery;
  bool track_recovery = false;
  bool shrank = false;
  /// Probationers admitted at this job's pause boundaries, pending the
  /// regrow that folds them into recovery.rejoined_ranks.
  std::vector<int> rejoined;
  int round = 0;

  // In-flight attempt state (valid while ticket != nullptr).
  std::vector<int> members;  ///< pool ranks; members[i] backs job rank i
  vmpi::JobTicketPtr ticket;
  bool supervised = false;
  vmpi::SupervisorOptions sopts;  ///< this round's supervision knobs
  vmpi::FaultPlan plan;           ///< live plan (disarmed as faults fire)
  vmpi::SupervisedResult sup;     ///< this round's chain accumulators
  Stopwatch chain;                ///< this round's chain clock
};

void Server::execute(JobRecord& rec) {
  rec.state = JobState::kRunning;
  Exec e;
  e.rec = &rec;
  e.run_ranks = rec.spec.ranks;
  e.run_layers = rec.spec.layers;
  if (begin_round(e) == RoundStart::kStarted) {
    while (e.ticket != nullptr) complete_attempt(e);
  }
  if (!rec.terminal()) {
    // kNoCapacity cannot happen on the serial path (every rank is idle
    // between jobs); defensive so a logic error fails loudly, not hangs.
    finish(rec, JobState::kFailed,
           "svc: no schedulable pool ranks for the job");
  }
}

Server::RoundStart Server::begin_round(Exec& e) {
  JobRecord& rec = *e.rec;
  const JobSpec& spec = rec.spec;
  // Every shrink disarms "permanent_crash", so a second round cannot fire
  // it again, and every pause round either admits or strikes a probationer
  // (quarantine bounds the flapping case) — the cap is defense in depth.
  if (e.round >= 8) {
    rec.report.billing = e.bill;
    finish(rec, JobState::kFailed,
           "svc: elastic recovery did not converge within the round cap");
    return RoundStart::kTerminal;
  }
  ++e.round;

  // Schedulable ranks for THIS job: alive and not held by another job's
  // in-flight split (busy_ is launcher-side bookkeeping — see server.hpp).
  // Dead ranks stay resident (they are threads whose death is logical) but
  // are never scheduled onto again. In the serial drain avail == alive.
  const std::vector<int> alive = pool_.alive_ranks();
  std::vector<int> avail;
  avail.reserve(alive.size());
  for (const int r : alive)
    if (busy_[static_cast<std::size_t>(r)] == 0) avail.push_back(r);

  if (static_cast<int>(alive.size()) < e.run_ranks) {
    if (!spec.elastic) {
      std::ostringstream os;
      os << "svc: job wants " << e.run_ranks << " ranks but only "
         << alive.size() << " of " << options_.pool_ranks
         << " pool ranks are alive and the job is not elastic";
      finish(rec, JobState::kFailed, os.str());
      return RoundStart::kTerminal;
    }
    if (avail.empty() && !alive.empty()) {
      // Survivors exist but every one of them is on a neighbour's split;
      // shrink once one frees (sizing from avail keeps splits disjoint).
      --e.round;
      return RoundStart::kNoCapacity;
    }
    const auto [p2, l2] =
        best_shrink(static_cast<int>(avail.size()), spec.layers);
    if (p2 == 0) {
      finish(rec, JobState::kFailed,
             "svc: no pool ranks left alive to run the job on");
      return RoundStart::kTerminal;
    }
    // Re-run Eq. (2) admission for the survivor grid: fewer ranks means
    // a smaller per-process share, and a budget that fit p ranks may not
    // fit p'.
    JobSpec shrunk = spec;
    shrunk.ranks = p2;
    shrunk.layers = l2;
    AdmissionEstimate est = estimate_admission(shrunk, rec.in_a, rec.in_b);
    if (!est.fits()) {
      std::ostringstream os;
      os << "svc: degraded grid " << p2 << " ranks x " << l2
         << " layers cannot hold the job under its declared budget: "
         << est.reason;
      finish(rec, JobState::kFailed, os.str());
      return RoundStart::kTerminal;
    }
    e.track_recovery = true;
    if (!e.shrank) {
      e.recovery.degraded_from_ranks = e.run_ranks;
      e.recovery.degraded_from_layers = e.run_layers;
    }
    e.shrank = true;
    e.recovery.degraded_to_ranks = p2;
    e.recovery.degraded_to_layers = l2;
    e.run_ranks = p2;
    e.run_layers = l2;
    // Redistribute the dead grid's checkpoints onto the survivor grid.
    // MCL resumes natively (its snapshot holds the re-replicated global
    // iterate under a grid-independent id); SpGEMM needs the pieces
    // re-sharded by global coordinates.
    if (spec.op == JobOp::kSpGemm && !spec.ckpt_dir.empty()) {
      e.cache = ckpt::redistribute_for_grid(
          spec.ckpt_dir,
          summa_ckpt_job_id(rec.in_a.nrows(), rec.in_a.ncols(),
                            rec.in_b.ncols(), rec.in_a.nnz(),
                            rec.in_b.nnz(), spec.ckpt_job_tag));
      e.resume = e.cache.empty() ? nullptr : &e.cache;
    }
  } else if (static_cast<int>(avail.size()) < e.run_ranks) {
    // Enough live capacity overall, just busy on other splits right now.
    --e.round;
    return RoundStart::kNoCapacity;
  } else if (options_.auto_rejoin && spec.elastic && e.shrank &&
             spec.op == JobOp::kSpGemm && !spec.ckpt_dir.empty()) {
    // Regrow, symmetric to the shrink above: the best grid on the ranks
    // this job may use (its own split plus idle spares, capped at the
    // spec's width). Admission must re-fit the larger shape; a refusal
    // keeps the degraded grid — never a failure.
    const auto [gp, gl] = best_shrink(
        std::min<int>(static_cast<int>(avail.size()), spec.ranks),
        spec.layers);
    if (gp > e.run_ranks) {
      JobSpec grown = spec;
      grown.ranks = gp;
      grown.layers = gl;
      AdmissionEstimate est = estimate_admission(grown, rec.in_a, rec.in_b);
      if (est.fits()) {
        e.track_recovery = true;
        e.recovery.regrown_from_ranks = e.run_ranks;
        e.recovery.regrown_from_layers = e.run_layers;
        e.recovery.regrown_to_ranks = gp;
        e.recovery.regrown_to_layers = gl;
        e.recovery.rejoined_ranks = e.rejoined;
        e.run_ranks = gp;
        e.run_layers = gl;
        // Re-shard the checkpoints for the larger shape. The epoch filter
        // in redistribute_for_grid keeps only the newest writer's grid, so
        // the mixed-shape directory (full-grid prefix + shrunk-grid
        // continuation) resumes exactly from the latest progress.
        e.cache = ckpt::redistribute_for_grid(
            spec.ckpt_dir,
            summa_ckpt_job_id(rec.in_a.nrows(), rec.in_a.ncols(),
                              rec.in_b.ncols(), rec.in_a.nnz(),
                              rec.in_b.nnz(), spec.ckpt_job_tag));
        e.resume = e.cache.empty() ? nullptr : &e.cache;
      }
    }
  }

  e.members.assign(avail.begin(),
                   avail.begin() + static_cast<std::ptrdiff_t>(e.run_ranks));

  // Arm the cooperative pause when there is a membership change to absorb:
  // a shrunk elastic SpGEMM job with probationers waiting parks after one
  // fresh batch so admit_probationers can run and the next round can
  // regrow. Bounded: each pause is followed by exactly one handshake per
  // probationer, which admits or strikes (quarantine at max_failures).
  rec.attempt_pause = 0;
  rec.attempt_paused = false;
  if (options_.auto_rejoin && spec.elastic && e.shrank &&
      spec.op == JobOp::kSpGemm && !spec.ckpt_dir.empty() &&
      !pool_.probation_ranks().empty())
    rec.attempt_pause = 1;

  // Reset this round's supervision chain (the incremental form of
  // detail::supervise: same plan threading, same backoff ladder).
  e.supervised = spec.supervised();
  if (e.supervised) {
    e.sopts = spec.supervisor_options();
    for (const std::string& kind : e.disarm)
      if (e.sopts.faults.has_value())
        e.sopts.faults = e.sopts.faults->disarmed(kind);
    e.plan = e.sopts.faults.has_value() ? *e.sopts.faults
                                        : vmpi::FaultPlan::from_env();
    e.sup = vmpi::SupervisedResult{};
    e.sup.max_restarts = e.sopts.max_restarts;
    e.chain = Stopwatch{};
  }
  start_attempt(e);
  return RoundStart::kStarted;
}

void Server::start_attempt(Exec& e) {
  JobRecord& rec = *e.rec;
  const int layers = e.run_layers;
  const ckpt::ResumeCache* attempt_resume = e.resume;
  // The job world is exactly members.size() ranks wide (members[i] backs
  // world rank i), so the body needs no split dance and fault plans key by
  // job-world rank — identical whichever pool split hosts the attempt.
  auto body = [this, &rec, layers, attempt_resume](vmpi::Comm& world) {
    run_body(rec, world, layers, attempt_resume);
  };
  vmpi::RunOptions ropts;
  if (e.supervised) {
    ropts.faults = e.plan;
    ropts.capture_failure = true;
    if (e.sopts.deadline_ms > 0) {
      // Each attempt runs under what is left of the chain budget (never 0:
      // a spent budget still gets one fast-failing probe so the failure
      // classifies as deadline_exceeded instead of hanging here).
      const auto elapsed =
          static_cast<std::int64_t>(e.chain.seconds() * 1000.0);
      ropts.deadline_ms =
          std::max<std::int64_t>(e.sopts.deadline_ms - elapsed, 1);
    }
  } else {
    ropts = rec.spec.run_options();
    for (const std::string& kind : e.disarm)
      if (ropts.faults.has_value())
        ropts.faults = ropts.faults->disarmed(kind);
  }
  e.ticket = pool_.start_job_on(e.members, body, ropts);
  for (const int r : e.members) busy_[static_cast<std::size_t>(r)] = 1;
}

void Server::complete_attempt(Exec& e) {
  JobRecord& rec = *e.rec;
  const JobSpec& spec = rec.spec;
  TenantLedger& ledger = tenant(spec.tenant);
  vmpi::RunResult res = pool_.finish_job(e.ticket);
  e.ticket = nullptr;
  for (const int r : e.members) busy_[static_cast<std::size_t>(r)] = 0;

  if (e.supervised) {
    if (res.failed() && vmpi::recoverable_failure(*res.failure) &&
        e.sup.restarts < e.sopts.max_restarts) {
      // Chain continues: disarm the fault that fired, wait out the backoff
      // ladder (PLAN = deterministic evidence, MEASURED = wall clock), and
      // relaunch on the same members.
      e.sup.wasted_seconds += res.wall_seconds;
      e.plan = e.plan.disarmed(res.failure->kind);
      e.sup.recovered_failures.push_back(*std::move(res.failure));
      std::int64_t plan_us = 0;
      if (e.sopts.restart_backoff_base_us > 0) {
        plan_us = e.sopts.restart_backoff_base_us;
        for (int i = 0;
             i < e.sup.restarts && plan_us < e.sopts.restart_backoff_cap_us;
             ++i)
          plan_us *= 2;
        plan_us = std::min(plan_us, e.sopts.restart_backoff_cap_us);
      }
      std::int64_t measured_us = 0;
      if (plan_us > 0) {
        Stopwatch slept;
        std::this_thread::sleep_for(std::chrono::microseconds(plan_us));
        measured_us = static_cast<std::int64_t>(slept.seconds() * 1e6);
      }
      e.sup.backoff_plan_us.push_back(plan_us);
      e.sup.backoff_us.push_back(measured_us);
      ++e.sup.restarts;
      start_attempt(e);
      return;
    }
    // Chain over: fold its accounting into the job, exactly as the serial
    // run_supervised epilogue did.
    e.sup.result = std::move(res);
    e.track_recovery = true;
    e.recovery.restarts += e.sup.restarts;
    e.recovery.max_restarts = e.sup.max_restarts;
    e.recovery.wasted_seconds += e.sup.wasted_seconds;
    for (const vmpi::FailureReport& f : e.sup.recovered_failures)
      e.recovery.failure_kinds.push_back(f.kind);
    for (const std::int64_t us : e.sup.backoff_us)
      e.recovery.backoff_us.push_back(us);
    for (const std::int64_t us : e.sup.backoff_plan_us)
      e.recovery.backoff_plan_us.push_back(us);
    obs::JobBilling abill = obs::bill_traffic(e.sup.result);
    abill.restarts = e.sup.restarts;
    for (const vmpi::FailureReport& f : e.sup.recovered_failures)
      abill.recovered_failure_kinds.push_back(f.kind);
    ledger.bill(abill, e.sup.result);
    fold_billing(e.bill, abill);
    rec.report.run = obs::build_report(e.sup);
    res = std::move(e.sup.result);
  } else {
    obs::JobBilling abill = obs::bill_traffic(res);
    ledger.bill(abill, res);
    fold_billing(e.bill, abill);
    rec.report.run = obs::build_report(res);
  }

  if (!res.failed()) {
    // A clean run vouches for every rank that took part: watchdog
    // suspicion (no-culprit deadlock verdicts) does not outlive it.
    pool_.clear_suspects();
    if (rec.attempt_paused) {
      // Parked at a batch boundary for a membership change: handshake the
      // probationers now, then take the regrow decision at the top of the
      // next round. The forced checkpoint carries the emitted prefix.
      const std::vector<int> admitted =
          pool_.admit_probationers(options_.membership);
      e.rejoined.insert(e.rejoined.end(), admitted.begin(), admitted.end());
      begin_round(e);
      return;
    }
    // A job boundary is a membership absorb point too: when the attempt ran
    // to completion without hitting a pause boundary (e.g. its resume cache
    // already covered every batch), waiting probationers still get their
    // handshake here, so a flapper keeps accruing strikes toward quarantine
    // and a healthy replacement is whole again for the next job.
    if (options_.auto_rejoin) pool_.admit_probationers(options_.membership);
    if (e.track_recovery) {
      if (!rec.report.run->recovery.has_value())
        rec.report.run->recovery = e.recovery;
      else {
        // Keep the final attempt's resumed_generation; everything else
        // aggregates over the whole chain (including prior grids).
        e.recovery.resumed_generation =
            rec.report.run->recovery->resumed_generation;
        rec.report.run->recovery = e.recovery;
      }
    }
    rec.report.billing = e.bill;
    rec.run_result = std::move(res);
    finish(rec, JobState::kDone, "");
    return;
  }

  const std::string kind = res.failure->kind;
  if (kind == "permanent_crash") {
    // The culprit rank is a JOB-world rank (fault plans arm on the job
    // world); map it through members to the pool rank that hosted it.
    const int jr = res.failure->rank;
    const int culprit =
        jr >= 0 && jr < static_cast<int>(e.members.size())
            ? e.members[static_cast<std::size_t>(jr)]
            : jr;
    pool_.mark_dead(culprit);
    e.recovery.dead_ranks.push_back(culprit);
    e.track_recovery = true;
    // Self-healing: the dead rank's replacement immediately asks back in
    // (kDead -> kProbation); it earns kAlive at a pause boundary.
    if (options_.auto_rejoin) pool_.request_rejoin(culprit);
  } else if (kind == "deadlock" && res.failure->rank < 0) {
    // A watchdog verdict without a culprit taints every participant.
    for (const int r : e.members) pool_.mark_suspect(r);
  }
  const bool retryable =
      spec.elastic && kind == "permanent_crash" && pool_.alive_count() >= 1;
  if (!retryable) {
    if (e.track_recovery) {
      if (rec.report.run->recovery.has_value())
        e.recovery.resumed_generation =
            rec.report.run->recovery->resumed_generation;
      rec.report.run->recovery = e.recovery;
    }
    rec.report.billing = e.bill;
    const std::string why = res.failure->describe();
    rec.run_result = std::move(res);
    finish(rec, JobState::kFailed, why);
    return;
  }
  e.recovery.failure_kinds.push_back(kind);
  e.disarm.push_back(kind);
  // Next round: if enough of this job's ranks remain, it re-runs at full
  // width (same-grid checkpoints resume natively — snapshot ranks are
  // job-world ranks). Only when the survivors cannot fill the requested
  // width does the round-top shrink path re-run admission and
  // redistribute the checkpoints.
  begin_round(e);
}

void Server::drain_concurrent(int width) {
  // Up to `width` jobs in flight on disjoint splits. Dispatch order is the
  // queue's EDF-over-priority order; collection is oldest-dispatch-first.
  // Both depend only on launcher-visible state, so the drain schedules
  // identically on every run of the same submission sequence.
  std::vector<std::unique_ptr<Exec>> active;  ///< ticket in flight
  std::vector<std::unique_ptr<Exec>> parked;  ///< waiting for a free split
  for (;;) {
    bool progressed = false;
    // Refill: parked execs first (oldest first), then the queue.
    for (std::size_t i = 0;
         i < parked.size() && static_cast<int>(active.size()) < width;) {
      const RoundStart s = begin_round(*parked[i]);
      if (s == RoundStart::kNoCapacity) {
        ++i;
        continue;
      }
      if (s == RoundStart::kStarted) active.push_back(std::move(parked[i]));
      parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(i));
      progressed = true;
    }
    std::vector<std::string> deferred;
    while (static_cast<int>(active.size()) < width && !queue_.empty()) {
      const std::string id = queue_.pop();
      JobRecord& rec = *jobs_.at(id);
      TenantLedger& ledger = tenant(rec.spec.tenant);
      if (ledger.traffic_exhausted()) {
        std::ostringstream os;
        os << "svc: tenant \"" << rec.spec.tenant
           << "\" traffic quota exhausted (" << ledger.traffic_billed()
           << " B logical billed >= quota " << ledger.quota().traffic_bytes
           << " B)";
        finish(rec, JobState::kThrottled, os.str());
        progressed = true;
        continue;
      }
      if (!rec.holds_reservation) {
        if (ledger.reserve(rec.reserved_bytes)) {
          rec.holds_reservation = true;
        } else {
          deferred.push_back(id);
          continue;
        }
      }
      rec.state = JobState::kRunning;
      auto e = std::make_unique<Exec>();
      e->rec = &rec;
      e->run_ranks = rec.spec.ranks;
      e->run_layers = rec.spec.layers;
      const RoundStart s = begin_round(*e);
      if (s == RoundStart::kStarted) {
        active.push_back(std::move(e));
        progressed = true;
      } else if (s == RoundStart::kNoCapacity) {
        parked.push_back(std::move(e));
      } else {
        progressed = true;  // terminal at the round top
      }
    }
    for (const std::string& id : deferred)
      queue_.push(id, jobs_.at(id)->spec.priority,
                  jobs_.at(id)->spec.deadline_ms);

    if (!active.empty()) {
      // Collect the oldest dispatch. Its chain restarts / pause-regrow
      // rounds re-ticket inside complete_attempt; a kNoCapacity round
      // parks it until a neighbour's split frees.
      complete_attempt(*active.front());
      Exec& front = *active.front();
      if (front.rec->terminal()) {
        active.erase(active.begin());
      } else if (front.ticket == nullptr) {
        parked.push_back(std::move(active.front()));
        active.erase(active.begin());
      }
      continue;
    }

    if (!parked.empty()) {
      // Defensive: with every slot idle a parked job must either start or
      // reach a terminal state at begin_round, so this is unreachable —
      // fail loudly rather than spin.
      for (auto& pe : parked)
        finish(*pe->rec, JobState::kFailed,
               "svc: no pool ranks left alive to run the job on");
      parked.clear();
      progressed = true;
    }
    if (queue_.empty()) return;
    if (!progressed) {
      // Every queued job is reservation-blocked and nothing is running:
      // those reservations can never be satisfied (mirrors step()).
      while (!queue_.empty()) {
        const std::string id = queue_.pop();
        finish(*jobs_.at(id), JobState::kRejected,
               "svc: reservation cannot be satisfied under the tenant's "
               "memory quota");
      }
      return;
    }
  }
}

void Server::run_body(JobRecord& rec, vmpi::Comm& world, int layers,
                      const ckpt::ResumeCache* resume) {
  const JobSpec& spec = rec.spec;
  // Enforce each rank's share of the declared aggregate budget, exactly
  // like the standalone CLIs (Symbolic3D only estimates; adaptive
  // re-batching recovers when the estimate is wrong).
  MemoryTracker tracker(
      spec.memory_bytes == 0
          ? 0
          : std::max<Bytes>(1, spec.memory_bytes /
                                   static_cast<Bytes>(world.size())));
  vmpi::arm_alloc_faults(world, tracker);
  SummaOptions opts = spec.summa_options();
  if (spec.memory_bytes != 0) opts.memory = &tracker;
  ckpt::Checkpointer ck;
  if (!spec.ckpt_dir.empty()) {
    ck = ckpt::Checkpointer(spec.ckpt_dir, world.rank(), spec.ckpt_every,
                            &world.recorder());
    opts.ckpt = &ck;
  }
  Grid3D grid(world, layers);
  switch (spec.op) {
    case JobOp::kSpGemm: {
      opts.resume = resume;
      opts.pause_after_batches = rec.attempt_pause;
      const DistMat3D da = distribute_a_style(grid, rec.in_a);
      const DistMat3D db = distribute_b_style(grid, rec.in_b);
      BatchedResult r = batched_summa3d<PlusTimes>(
          grid, da, db, spec.memory_bytes, opts, BatchCallback{},
          /*keep_output=*/true);
      if (r.paused) {
        // Parked at a batch boundary (r.paused is SPMD-consistent, so
        // every rank skips the gather together); the forced checkpoint
        // carries the emitted prefix to the resumed attempt.
        if (world.rank() == 0) rec.attempt_paused = true;
        break;
      }
      CscMat full = gather_dist(grid, r.c);
      if (world.rank() == 0) {
        rec.c = std::move(full);
        rec.batches = r.batches;
        rec.final_batches = r.final_batches;
      }
      break;
    }
    case JobOp::kMcl: {
      MclResult r = mcl_cluster_distributed(grid, rec.in_a, spec.mcl,
                                            spec.memory_bytes, opts);
      if (world.rank() == 0) rec.mcl = std::move(r);
      break;
    }
    case JobOp::kTriangleCount: {
      const Index t = count_triangles_distributed(grid, rec.in_a,
                                                  spec.memory_bytes, opts);
      if (world.rank() == 0) rec.triangles = t;
      break;
    }
  }
}

void Server::finish(JobRecord& rec, JobState state, std::string reason) {
  release_reservation(rec);
  rec.state = state;
  rec.reason = reason;
  obs::JobReport& rep = rec.report;
  rep.job_id = rec.spec.job_id;
  rep.tenant = rec.spec.tenant;
  rep.op = to_string(rec.spec.op);
  rep.priority = rec.spec.priority;
  rep.state = to_string(state);
  rep.reason = std::move(reason);
  rep.admission = rec.admission;
  tenant(rec.spec.tenant).count_job(rep.state);
}

void Server::release_reservation(JobRecord& rec) {
  if (!rec.holds_reservation) return;
  tenant(rec.spec.tenant).release(rec.reserved_bytes);
  rec.holds_reservation = false;
}

}  // namespace casp::svc
