#include "svc/server.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "apps/triangle.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "grid/dist.hpp"
#include "grid/grid3d.hpp"
#include "kernels/semiring.hpp"
#include "obs/report.hpp"
#include "summa/batched.hpp"
#include "svc/admission.hpp"
#include "vmpi/faults.hpp"

namespace casp::svc {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kThrottled:
      return "throttled";
  }
  return "unknown";
}

Server::Server(ServerOptions options)
    : options_(options), pool_(options.pool_ranks) {}

TenantLedger& Server::tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    TenantQuota quota;
    auto qi = options_.quotas.find(name);
    if (qi != options_.quotas.end()) quota = qi->second;
    it = tenants_
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple(name, quota))
             .first;
  }
  return it->second;
}

obs::Json Server::tenant_report(const std::string& name) {
  return tenant(name).report();
}

obs::Json Server::job_reports_json(bool deterministic) const {
  obs::Json arr = obs::Json::array();
  for (const std::string& id : order_) {
    const obs::JobReport& rep = jobs_.at(id)->report;
    arr.push_back(deterministic ? rep.deterministic_json() : rep.to_json());
  }
  return arr;
}

std::string Server::submit(JobSpec spec) {
  spec.validate();
  if (spec.ranks > options_.pool_ranks) {
    std::ostringstream os;
    os << "svc: job wants " << spec.ranks << " ranks but the pool has "
       << options_.pool_ranks;
    throw InvalidArgument(os.str());
  }
  if (spec.job_id.empty())
    spec.job_id = "job-" + std::to_string(next_job_);
  ++next_job_;
  if (jobs_.count(spec.job_id) != 0)
    throw InvalidArgument("svc: duplicate job id \"" + spec.job_id + "\"");

  auto holder = std::make_unique<JobRecord>();
  JobRecord& rec = *holder;
  rec.spec = std::move(spec);
  rec.in_a = rec.spec.a.materialize();
  switch (rec.spec.op) {
    case JobOp::kSpGemm:
      if (rec.spec.aat)
        rec.in_b = rec.in_a.transpose();
      else if (rec.spec.b.empty())
        rec.in_b = rec.in_a;
      else
        rec.in_b = rec.spec.b.materialize();
      break;
    case JobOp::kMcl:
    case JobOp::kTriangleCount:
      if (rec.in_a.nrows() != rec.in_a.ncols())
        throw InvalidArgument(std::string("svc: ") + to_string(rec.spec.op) +
                              " requires a square input matrix");
      rec.in_b = rec.in_a;
      break;
  }

  const std::string id = rec.spec.job_id;
  jobs_.emplace(id, std::move(holder));
  order_.push_back(id);
  JobRecord& job = *jobs_.at(id);

  // Eq. (2) estimate on a fault-free scratch job (outside the pool).
  AdmissionEstimate est = estimate_admission(job.spec, job.in_a, job.in_b);
  job.admission = est.admission;
  if (!est.fits()) {
    finish(job, JobState::kRejected, est.reason);
    return id;
  }
  job.reserved_bytes = reservation_bytes(job.spec, job.admission);
  job.admission.reserved_bytes = job.reserved_bytes;

  TenantLedger& ledger = tenant(job.spec.tenant);
  if (!ledger.within_memory_quota(job.reserved_bytes)) {
    std::ostringstream os;
    os << "svc: reservation " << job.reserved_bytes
       << " B exceeds tenant \"" << job.spec.tenant << "\" memory quota "
       << ledger.quota().memory_bytes << " B";
    finish(job, JobState::kRejected, os.str());
    return id;
  }
  if (ledger.traffic_exhausted()) {
    std::ostringstream os;
    os << "svc: tenant \"" << job.spec.tenant
       << "\" traffic quota exhausted (" << ledger.traffic_billed()
       << " B logical billed >= quota " << ledger.quota().traffic_bytes
       << " B)";
    finish(job, JobState::kThrottled, os.str());
    return id;
  }
  // Take the reservation now when the quota allows; otherwise the job
  // queues unreserved and the scheduler retries as earlier jobs release.
  if (ledger.reserve(job.reserved_bytes)) job.holds_reservation = true;
  queue_.push(id, job.spec.priority);
  return id;
}

bool Server::cancel(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  if (!queue_.remove(job_id)) return false;  // running or already terminal
  finish(*it->second, JobState::kCancelled, "cancelled by client");
  return true;
}

const JobRecord& Server::wait(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end())
    throw InvalidArgument("svc: unknown job id \"" + job_id + "\"");
  while (!it->second->terminal() && step()) {
  }
  return *it->second;
}

void Server::drain() {
  while (!queue_.empty() && step()) {
  }
}

const JobRecord* Server::find(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

bool Server::step() {
  std::vector<std::string> deferred;
  bool progressed = false;
  while (!queue_.empty()) {
    const std::string id = queue_.pop();
    JobRecord& rec = *jobs_.at(id);
    TenantLedger& ledger = tenant(rec.spec.tenant);
    if (ledger.traffic_exhausted()) {
      std::ostringstream os;
      os << "svc: tenant \"" << rec.spec.tenant
         << "\" traffic quota exhausted (" << ledger.traffic_billed()
         << " B logical billed >= quota " << ledger.quota().traffic_bytes
         << " B)";
      finish(rec, JobState::kThrottled, os.str());
      progressed = true;
      continue;  // other tenants' jobs keep going
    }
    if (!rec.holds_reservation) {
      if (ledger.reserve(rec.reserved_bytes)) {
        rec.holds_reservation = true;
      } else {
        deferred.push_back(id);
        continue;
      }
    }
    execute(rec);
    progressed = true;
    break;
  }
  for (const std::string& id : deferred)
    queue_.push(id, jobs_.at(id)->spec.priority);
  if (!progressed && !deferred.empty()) {
    // Defensive: every reservation is held by a queued job, so a full
    // no-progress pass means these reservations can never be satisfied.
    for (const std::string& id : deferred) {
      JobRecord& rec = *jobs_.at(id);
      queue_.remove(id);
      finish(rec, JobState::kRejected,
             "svc: reservation cannot be satisfied under the tenant's "
             "memory quota");
    }
    progressed = true;
  }
  return progressed;
}

void Server::execute(JobRecord& rec) {
  rec.state = JobState::kRunning;
  const int job_ranks = rec.spec.ranks;
  auto body = [this, &rec, job_ranks](vmpi::Comm& world) {
    if (world.size() == job_ranks) {
      run_body(rec, world);
      return;
    }
    // Sub-sized job: the first job_ranks pool ranks form its world, the
    // rest split off and idle (the split itself is collective).
    vmpi::Comm sub =
        world.split(world.rank() < job_ranks ? 0 : 1, world.rank());
    if (world.rank() >= job_ranks) return;
    run_body(rec, sub);
  };

  TenantLedger& ledger = tenant(rec.spec.tenant);
  if (rec.spec.supervised()) {
    vmpi::SupervisedResult sup =
        pool_.run_supervised(body, rec.spec.supervisor_options());
    obs::JobBilling bill = obs::bill_traffic(sup.result);
    bill.restarts = sup.restarts;
    for (const vmpi::FailureReport& f : sup.recovered_failures)
      bill.recovered_failure_kinds.push_back(f.kind);
    rec.report.billing = bill;
    rec.report.run = obs::build_report(sup);
    ledger.bill(bill, sup.result);
    const bool failed = sup.result.failed();
    const std::string why = failed ? sup.result.failure->describe() : "";
    rec.run_result = std::move(sup.result);
    finish(rec, failed ? JobState::kFailed : JobState::kDone, why);
  } else {
    vmpi::RunResult res = pool_.run_job(body, rec.spec.run_options());
    obs::JobBilling bill = obs::bill_traffic(res);
    rec.report.billing = bill;
    rec.report.run = obs::build_report(res);
    ledger.bill(bill, res);
    const bool failed = res.failed();
    const std::string why = failed ? res.failure->describe() : "";
    rec.run_result = std::move(res);
    finish(rec, failed ? JobState::kFailed : JobState::kDone, why);
  }
}

void Server::run_body(JobRecord& rec, vmpi::Comm& world) {
  const JobSpec& spec = rec.spec;
  // Enforce each rank's share of the declared aggregate budget, exactly
  // like the standalone CLIs (Symbolic3D only estimates; adaptive
  // re-batching recovers when the estimate is wrong).
  MemoryTracker tracker(
      spec.memory_bytes == 0
          ? 0
          : std::max<Bytes>(1, spec.memory_bytes /
                                   static_cast<Bytes>(world.size())));
  vmpi::arm_alloc_faults(world, tracker);
  SummaOptions opts = spec.summa_options();
  if (spec.memory_bytes != 0) opts.memory = &tracker;
  ckpt::Checkpointer ck;
  if (!spec.ckpt_dir.empty()) {
    ck = ckpt::Checkpointer(spec.ckpt_dir, world.rank(), spec.ckpt_every,
                            &world.recorder());
    opts.ckpt = &ck;
  }
  Grid3D grid(world, spec.layers);
  switch (spec.op) {
    case JobOp::kSpGemm: {
      const DistMat3D da = distribute_a_style(grid, rec.in_a);
      const DistMat3D db = distribute_b_style(grid, rec.in_b);
      BatchedResult r = batched_summa3d<PlusTimes>(
          grid, da, db, spec.memory_bytes, opts, BatchCallback{},
          /*keep_output=*/true);
      CscMat full = gather_dist(grid, r.c);
      if (world.rank() == 0) {
        rec.c = std::move(full);
        rec.batches = r.batches;
        rec.final_batches = r.final_batches;
      }
      break;
    }
    case JobOp::kMcl: {
      MclResult r = mcl_cluster_distributed(grid, rec.in_a, spec.mcl,
                                            spec.memory_bytes, opts);
      if (world.rank() == 0) rec.mcl = std::move(r);
      break;
    }
    case JobOp::kTriangleCount: {
      const Index t = count_triangles_distributed(grid, rec.in_a,
                                                  spec.memory_bytes, opts);
      if (world.rank() == 0) rec.triangles = t;
      break;
    }
  }
}

void Server::finish(JobRecord& rec, JobState state, std::string reason) {
  release_reservation(rec);
  rec.state = state;
  rec.reason = reason;
  obs::JobReport& rep = rec.report;
  rep.job_id = rec.spec.job_id;
  rep.tenant = rec.spec.tenant;
  rep.op = to_string(rec.spec.op);
  rep.priority = rec.spec.priority;
  rep.state = to_string(state);
  rep.reason = std::move(reason);
  rep.admission = rec.admission;
  tenant(rec.spec.tenant).count_job(rep.state);
}

void Server::release_reservation(JobRecord& rec) {
  if (!rec.holds_reservation) return;
  tenant(rec.spec.tenant).release(rec.reserved_bytes);
  rec.holds_reservation = false;
}

}  // namespace casp::svc
