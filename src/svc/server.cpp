#include "svc/server.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "apps/triangle.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "grid/dist.hpp"
#include "grid/grid3d.hpp"
#include "kernels/semiring.hpp"
#include "obs/report.hpp"
#include "summa/batched.hpp"
#include "svc/admission.hpp"
#include "vmpi/faults.hpp"

namespace casp::svc {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kThrottled:
      return "throttled";
  }
  return "unknown";
}

Server::Server(ServerOptions options)
    : options_(options), pool_(options.pool_ranks) {}

TenantLedger& Server::tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    TenantQuota quota;
    auto qi = options_.quotas.find(name);
    if (qi != options_.quotas.end()) quota = qi->second;
    it = tenants_
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple(name, quota))
             .first;
  }
  return it->second;
}

obs::Json Server::tenant_report(const std::string& name) {
  return tenant(name).report();
}

obs::Json Server::job_reports_json(bool deterministic) const {
  obs::Json arr = obs::Json::array();
  for (const std::string& id : order_) {
    const obs::JobReport& rep = jobs_.at(id)->report;
    arr.push_back(deterministic ? rep.deterministic_json() : rep.to_json());
  }
  return arr;
}

std::string Server::submit(JobSpec spec) {
  spec.validate();
  if (spec.ranks > options_.pool_ranks) {
    std::ostringstream os;
    os << "svc: job wants " << spec.ranks << " ranks but the pool has "
       << options_.pool_ranks;
    throw InvalidArgument(os.str());
  }
  if (spec.job_id.empty())
    spec.job_id = "job-" + std::to_string(next_job_);
  ++next_job_;
  if (jobs_.count(spec.job_id) != 0)
    throw InvalidArgument("svc: duplicate job id \"" + spec.job_id + "\"");

  auto holder = std::make_unique<JobRecord>();
  JobRecord& rec = *holder;
  rec.spec = std::move(spec);
  rec.in_a = rec.spec.a.materialize();
  switch (rec.spec.op) {
    case JobOp::kSpGemm:
      if (rec.spec.aat)
        rec.in_b = rec.in_a.transpose();
      else if (rec.spec.b.empty())
        rec.in_b = rec.in_a;
      else
        rec.in_b = rec.spec.b.materialize();
      break;
    case JobOp::kMcl:
    case JobOp::kTriangleCount:
      if (rec.in_a.nrows() != rec.in_a.ncols())
        throw InvalidArgument(std::string("svc: ") + to_string(rec.spec.op) +
                              " requires a square input matrix");
      rec.in_b = rec.in_a;
      break;
  }

  const std::string id = rec.spec.job_id;
  jobs_.emplace(id, std::move(holder));
  order_.push_back(id);
  JobRecord& job = *jobs_.at(id);

  // Eq. (2) estimate on a fault-free scratch job (outside the pool).
  AdmissionEstimate est = estimate_admission(job.spec, job.in_a, job.in_b);
  job.admission = est.admission;
  if (!est.fits()) {
    finish(job, JobState::kRejected, est.reason);
    return id;
  }
  job.reserved_bytes = reservation_bytes(job.spec, job.admission);
  job.admission.reserved_bytes = job.reserved_bytes;

  TenantLedger& ledger = tenant(job.spec.tenant);
  if (!ledger.within_memory_quota(job.reserved_bytes)) {
    std::ostringstream os;
    os << "svc: reservation " << job.reserved_bytes
       << " B exceeds tenant \"" << job.spec.tenant << "\" memory quota "
       << ledger.quota().memory_bytes << " B";
    finish(job, JobState::kRejected, os.str());
    return id;
  }
  if (ledger.traffic_exhausted()) {
    std::ostringstream os;
    os << "svc: tenant \"" << job.spec.tenant
       << "\" traffic quota exhausted (" << ledger.traffic_billed()
       << " B logical billed >= quota " << ledger.quota().traffic_bytes
       << " B)";
    finish(job, JobState::kThrottled, os.str());
    return id;
  }
  // Take the reservation now when the quota allows; otherwise the job
  // queues unreserved and the scheduler retries as earlier jobs release.
  if (ledger.reserve(job.reserved_bytes)) job.holds_reservation = true;
  queue_.push(id, job.spec.priority);
  return id;
}

bool Server::cancel(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  if (!queue_.remove(job_id)) return false;  // running or already terminal
  finish(*it->second, JobState::kCancelled, "cancelled by client");
  return true;
}

const JobRecord& Server::wait(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end())
    throw InvalidArgument("svc: unknown job id \"" + job_id + "\"");
  while (!it->second->terminal() && step()) {
  }
  return *it->second;
}

void Server::drain() {
  while (!queue_.empty() && step()) {
  }
}

const JobRecord* Server::find(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

bool Server::step() {
  std::vector<std::string> deferred;
  bool progressed = false;
  while (!queue_.empty()) {
    const std::string id = queue_.pop();
    JobRecord& rec = *jobs_.at(id);
    TenantLedger& ledger = tenant(rec.spec.tenant);
    if (ledger.traffic_exhausted()) {
      std::ostringstream os;
      os << "svc: tenant \"" << rec.spec.tenant
         << "\" traffic quota exhausted (" << ledger.traffic_billed()
         << " B logical billed >= quota " << ledger.quota().traffic_bytes
         << " B)";
      finish(rec, JobState::kThrottled, os.str());
      progressed = true;
      continue;  // other tenants' jobs keep going
    }
    if (!rec.holds_reservation) {
      if (ledger.reserve(rec.reserved_bytes)) {
        rec.holds_reservation = true;
      } else {
        deferred.push_back(id);
        continue;
      }
    }
    execute(rec);
    progressed = true;
    break;
  }
  for (const std::string& id : deferred)
    queue_.push(id, jobs_.at(id)->spec.priority);
  if (!progressed && !deferred.empty()) {
    // Defensive: every reservation is held by a queued job, so a full
    // no-progress pass means these reservations can never be satisfied.
    for (const std::string& id : deferred) {
      JobRecord& rec = *jobs_.at(id);
      queue_.remove(id);
      finish(rec, JobState::kRejected,
             "svc: reservation cannot be satisfied under the tenant's "
             "memory quota");
    }
    progressed = true;
  }
  return progressed;
}

namespace {

/// Largest valid grid on at most `avail` ranks, preferring the requested
/// layer count, then the tallest stack that still divides. {0, 0} when not
/// even a 1x1x1 grid fits (avail < 1).
std::pair<int, int> best_shrink(int avail, int want_layers) {
  for (int p = avail; p >= 1; --p) {
    if (want_layers >= 1 && want_layers <= p &&
        Grid3D::valid_shape(p, want_layers))
      return {p, want_layers};
    for (int l = std::min(want_layers, p); l >= 1; --l)
      if (Grid3D::valid_shape(p, l)) return {p, l};
  }
  return {0, 0};
}

/// Fold one executed attempt's traffic into the job's cumulative bill (a
/// degraded job pays for the failed full-grid attempt too).
void fold_billing(obs::JobBilling& total, const obs::JobBilling& attempt) {
  total.messages += attempt.messages;
  total.logical_bytes += attempt.logical_bytes;
  total.shipped_bytes += attempt.shipped_bytes;
  total.restarts += attempt.restarts;
  for (const std::string& k : attempt.recovered_failure_kinds)
    total.recovered_failure_kinds.push_back(k);
}

}  // namespace

void Server::execute(JobRecord& rec) {
  rec.state = JobState::kRunning;
  TenantLedger& ledger = tenant(rec.spec.tenant);
  const JobSpec& spec = rec.spec;

  // Grid the current attempt runs on; shrinks after a permanent loss.
  int run_ranks = spec.ranks;
  int run_layers = spec.layers;
  // Degraded-resume state: the redistributed checkpoint cache (owned here,
  // borrowed by the attempt through SummaOptions::resume).
  ckpt::ResumeCache cache;
  const ckpt::ResumeCache* resume = nullptr;
  // Fault kinds that already fired a shrink are disarmed on relaunch — a
  // permanent crash is one event, not a property of every future attempt.
  std::vector<std::string> disarm;

  obs::JobBilling bill;
  obs::RecoveryReport recovery;
  bool track_recovery = false;
  bool shrank = false;

  // The loop terminates: every shrink disarms "permanent_crash", so a
  // second round cannot fire it again; the round cap is defense in depth.
  for (int round = 0; round < 5; ++round) {
    // Run on the first run_ranks ALIVE pool ranks. Dead ranks stay
    // resident (they are threads whose death is logical) but are never
    // scheduled onto again.
    const std::vector<int> alive = pool_.alive_ranks();
    if (static_cast<int>(alive.size()) < run_ranks) {
      if (!spec.elastic) {
        std::ostringstream os;
        os << "svc: job wants " << run_ranks << " ranks but only "
           << alive.size() << " of " << options_.pool_ranks
           << " pool ranks are alive and the job is not elastic";
        finish(rec, JobState::kFailed, os.str());
        return;
      }
      const auto [p2, l2] =
          best_shrink(static_cast<int>(alive.size()), spec.layers);
      if (p2 == 0) {
        finish(rec, JobState::kFailed,
               "svc: no pool ranks left alive to run the job on");
        return;
      }
      // Re-run Eq. (2) admission for the survivor grid: fewer ranks means
      // a smaller per-process share, and a budget that fit p ranks may not
      // fit p'.
      JobSpec shrunk = spec;
      shrunk.ranks = p2;
      shrunk.layers = l2;
      AdmissionEstimate est = estimate_admission(shrunk, rec.in_a, rec.in_b);
      if (!est.fits()) {
        std::ostringstream os;
        os << "svc: degraded grid " << p2 << " ranks x " << l2
           << " layers cannot hold the job under its declared budget: "
           << est.reason;
        finish(rec, JobState::kFailed, os.str());
        return;
      }
      track_recovery = true;
      if (!shrank) {
        recovery.degraded_from_ranks = run_ranks;
        recovery.degraded_from_layers = run_layers;
      }
      shrank = true;
      recovery.degraded_to_ranks = p2;
      recovery.degraded_to_layers = l2;
      run_ranks = p2;
      run_layers = l2;
      // Redistribute the dead grid's checkpoints onto the survivor grid.
      // MCL resumes natively (its snapshot holds the re-replicated global
      // iterate under a grid-independent id); SpGEMM needs the pieces
      // re-sharded by global coordinates.
      if (spec.op == JobOp::kSpGemm && !spec.ckpt_dir.empty()) {
        cache = ckpt::redistribute_for_grid(
            spec.ckpt_dir,
            summa_ckpt_job_id(rec.in_a.nrows(), rec.in_a.ncols(),
                              rec.in_b.ncols(), rec.in_a.nnz(),
                              rec.in_b.nnz(), spec.ckpt_job_tag));
        resume = cache.empty() ? nullptr : &cache;
      }
    }

    std::vector<int> members(alive.begin(),
                             alive.begin() + static_cast<std::size_t>(
                                                 std::min<int>(
                                                     run_ranks,
                                                     static_cast<int>(
                                                         alive.size()))));
    const int layers = run_layers;
    const ckpt::ResumeCache* attempt_resume = resume;
    auto body = [this, &rec, &members, layers,
                 attempt_resume](vmpi::Comm& world) {
      if (static_cast<int>(members.size()) == world.size()) {
        run_body(rec, world, layers, attempt_resume);
        return;
      }
      // Sub-sized job: the member pool ranks form its world, the rest
      // split off and idle (the split itself is collective).
      const bool member =
          std::binary_search(members.begin(), members.end(), world.rank());
      vmpi::Comm sub = world.split(member ? 0 : 1, world.rank());
      if (!member) return;
      run_body(rec, sub, layers, attempt_resume);
    };

    vmpi::RunResult res;
    if (spec.supervised()) {
      vmpi::SupervisorOptions sopts = spec.supervisor_options();
      for (const std::string& kind : disarm)
        if (sopts.faults.has_value())
          sopts.faults = sopts.faults->disarmed(kind);
      vmpi::SupervisedResult sup = pool_.run_supervised(body, sopts);
      track_recovery = true;
      recovery.restarts += sup.restarts;
      recovery.max_restarts = sup.max_restarts;
      recovery.wasted_seconds += sup.wasted_seconds;
      for (const vmpi::FailureReport& f : sup.recovered_failures)
        recovery.failure_kinds.push_back(f.kind);
      for (const std::int64_t us : sup.backoff_us)
        recovery.backoff_us.push_back(us);
      obs::JobBilling abill = obs::bill_traffic(sup.result);
      abill.restarts = sup.restarts;
      for (const vmpi::FailureReport& f : sup.recovered_failures)
        abill.recovered_failure_kinds.push_back(f.kind);
      ledger.bill(abill, sup.result);
      fold_billing(bill, abill);
      rec.report.run = obs::build_report(sup);
      res = std::move(sup.result);
    } else {
      vmpi::RunOptions ropts = spec.run_options();
      for (const std::string& kind : disarm)
        if (ropts.faults.has_value())
          ropts.faults = ropts.faults->disarmed(kind);
      res = pool_.run_job(body, ropts);
      obs::JobBilling abill = obs::bill_traffic(res);
      ledger.bill(abill, res);
      fold_billing(bill, abill);
      rec.report.run = obs::build_report(res);
    }

    if (!res.failed()) {
      // A clean run vouches for every rank that took part: watchdog
      // suspicion (no-culprit deadlock verdicts) does not outlive it.
      pool_.clear_suspects();
      if (track_recovery) {
        if (!rec.report.run->recovery.has_value())
          rec.report.run->recovery = recovery;
        else {
          // Keep the final attempt's resumed_generation; everything else
          // aggregates over the whole chain (including prior grids).
          recovery.resumed_generation =
              rec.report.run->recovery->resumed_generation;
          rec.report.run->recovery = recovery;
        }
      }
      rec.report.billing = bill;
      rec.run_result = std::move(res);
      finish(rec, JobState::kDone, "");
      return;
    }

    const std::string kind = res.failure->kind;
    if (kind == "permanent_crash") {
      // The culprit rank is a pool-world rank: jobs arm their fault plan
      // on the pool world, and sub-sized jobs split with key world.rank().
      pool_.mark_dead(res.failure->rank);
      recovery.dead_ranks.push_back(res.failure->rank);
      track_recovery = true;
    } else if (kind == "deadlock" && res.failure->rank < 0) {
      // A watchdog verdict without a culprit taints every participant.
      for (const int r : members) pool_.mark_suspect(r);
    }
    const bool retryable =
        spec.elastic && kind == "permanent_crash" &&
        pool_.alive_count() >= 1;
    if (!retryable) {
      if (track_recovery) {
        if (rec.report.run->recovery.has_value())
          recovery.resumed_generation =
              rec.report.run->recovery->resumed_generation;
        rec.report.run->recovery = recovery;
      }
      rec.report.billing = bill;
      const std::string why = res.failure->describe();
      rec.run_result = std::move(res);
      finish(rec, JobState::kFailed, why);
      return;
    }
    recovery.failure_kinds.push_back(kind);
    disarm.push_back(kind);
    // Next round: if enough alive ranks remain, the job re-runs at full
    // width on spare pool ranks (same-grid checkpoints resume natively —
    // snapshot ranks are sub-world ranks, not pool ranks). Only when the
    // survivors cannot fill the requested width does the loop-top shrink
    // path re-run admission and redistribute the checkpoints.
  }
  // Round cap exhausted (defensive; unreachable with a sane fault plan).
  rec.report.billing = bill;
  finish(rec, JobState::kFailed,
         "svc: elastic recovery did not converge within the round cap");
}

void Server::run_body(JobRecord& rec, vmpi::Comm& world, int layers,
                      const ckpt::ResumeCache* resume) {
  const JobSpec& spec = rec.spec;
  // Enforce each rank's share of the declared aggregate budget, exactly
  // like the standalone CLIs (Symbolic3D only estimates; adaptive
  // re-batching recovers when the estimate is wrong).
  MemoryTracker tracker(
      spec.memory_bytes == 0
          ? 0
          : std::max<Bytes>(1, spec.memory_bytes /
                                   static_cast<Bytes>(world.size())));
  vmpi::arm_alloc_faults(world, tracker);
  SummaOptions opts = spec.summa_options();
  if (spec.memory_bytes != 0) opts.memory = &tracker;
  ckpt::Checkpointer ck;
  if (!spec.ckpt_dir.empty()) {
    ck = ckpt::Checkpointer(spec.ckpt_dir, world.rank(), spec.ckpt_every,
                            &world.recorder());
    opts.ckpt = &ck;
  }
  Grid3D grid(world, layers);
  switch (spec.op) {
    case JobOp::kSpGemm: {
      opts.resume = resume;
      const DistMat3D da = distribute_a_style(grid, rec.in_a);
      const DistMat3D db = distribute_b_style(grid, rec.in_b);
      BatchedResult r = batched_summa3d<PlusTimes>(
          grid, da, db, spec.memory_bytes, opts, BatchCallback{},
          /*keep_output=*/true);
      CscMat full = gather_dist(grid, r.c);
      if (world.rank() == 0) {
        rec.c = std::move(full);
        rec.batches = r.batches;
        rec.final_batches = r.final_batches;
      }
      break;
    }
    case JobOp::kMcl: {
      MclResult r = mcl_cluster_distributed(grid, rec.in_a, spec.mcl,
                                            spec.memory_bytes, opts);
      if (world.rank() == 0) rec.mcl = std::move(r);
      break;
    }
    case JobOp::kTriangleCount: {
      const Index t = count_triangles_distributed(grid, rec.in_a,
                                                  spec.memory_bytes, opts);
      if (world.rank() == 0) rec.triangles = t;
      break;
    }
  }
}

void Server::finish(JobRecord& rec, JobState state, std::string reason) {
  release_reservation(rec);
  rec.state = state;
  rec.reason = reason;
  obs::JobReport& rep = rec.report;
  rep.job_id = rec.spec.job_id;
  rep.tenant = rec.spec.tenant;
  rep.op = to_string(rec.spec.op);
  rep.priority = rec.spec.priority;
  rep.state = to_string(state);
  rep.reason = std::move(reason);
  rep.admission = rec.admission;
  tenant(rec.spec.tenant).count_job(rep.state);
}

void Server::release_reservation(JobRecord& rec) {
  if (!rec.holds_reservation) return;
  tenant(rec.spec.tenant).release(rec.reserved_bytes);
  rec.holds_reservation = false;
}

}  // namespace casp::svc
