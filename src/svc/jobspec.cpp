#include "svc/jobspec.hpp"

#include "common/error.hpp"
#include "grid/grid3d.hpp"
#include "sparse/mm_io.hpp"
#include "vmpi/faults.hpp"

namespace casp::svc {

const char* to_string(JobOp op) {
  switch (op) {
    case JobOp::kSpGemm:
      return "spgemm";
    case JobOp::kMcl:
      return "mcl";
    case JobOp::kTriangleCount:
      return "triangle";
  }
  return "spgemm";
}

JobOp job_op_from_string(const std::string& name) {
  if (name == "spgemm") return JobOp::kSpGemm;
  if (name == "mcl") return JobOp::kMcl;
  if (name == "triangle") return JobOp::kTriangleCount;
  throw InvalidArgument("jobspec: unknown op \"" + name +
                        "\" (spgemm|mcl|triangle)");
}

namespace {

const char* kind_name(MatrixSource::Kind kind) {
  switch (kind) {
    case MatrixSource::Kind::kNone:
      return "none";
    case MatrixSource::Kind::kFile:
      return "file";
    case MatrixSource::Kind::kEr:
      return "er";
    case MatrixSource::Kind::kRmat:
      return "rmat";
    case MatrixSource::Kind::kProtein:
      return "protein";
  }
  return "none";
}

MatrixSource::Kind kind_from_name(const std::string& name) {
  if (name == "none") return MatrixSource::Kind::kNone;
  if (name == "file") return MatrixSource::Kind::kFile;
  if (name == "er") return MatrixSource::Kind::kEr;
  if (name == "rmat") return MatrixSource::Kind::kRmat;
  if (name == "protein") return MatrixSource::Kind::kProtein;
  throw InvalidArgument("jobspec: unknown matrix source kind \"" + name +
                        "\"");
}

[[noreturn]] void unknown_key(const char* where, const std::string& key) {
  throw InvalidArgument(std::string("jobspec: unknown key \"") + key +
                        "\" in " + where);
}

void expect_object(const obs::Json& j, const char* where) {
  if (!j.is_object())
    throw InvalidArgument(std::string("jobspec: ") + where +
                          " must be a JSON object");
}

obs::Json er_json(const ErParams& p) {
  obs::Json j = obs::Json::object();
  j.set("nrows", static_cast<std::int64_t>(p.nrows));
  j.set("ncols", static_cast<std::int64_t>(p.ncols));
  j.set("nnz_per_col", p.nnz_per_col);
  j.set("random_values", p.random_values);
  j.set("seed", p.seed);
  return j;
}

ErParams er_from_json(const obs::Json& j) {
  expect_object(j, "er params");
  ErParams p;
  for (const auto& [key, v] : j.members()) {
    if (key == "nrows") p.nrows = v.as_int();
    else if (key == "ncols") p.ncols = v.as_int();
    else if (key == "nnz_per_col") p.nnz_per_col = v.as_double();
    else if (key == "random_values") p.random_values = v.as_bool();
    else if (key == "seed") p.seed = static_cast<std::uint64_t>(v.as_int());
    else unknown_key("er params", key);
  }
  return p;
}

obs::Json rmat_json(const RmatParams& p) {
  obs::Json j = obs::Json::object();
  j.set("scale", p.scale);
  j.set("edge_factor", p.edge_factor);
  j.set("a", p.a);
  j.set("b", p.b);
  j.set("c", p.c);
  j.set("d", p.d);
  j.set("noise", p.noise);
  j.set("symmetric", p.symmetric);
  j.set("remove_self_loops", p.remove_self_loops);
  j.set("random_values", p.random_values);
  j.set("seed", p.seed);
  return j;
}

RmatParams rmat_from_json(const obs::Json& j) {
  expect_object(j, "rmat params");
  RmatParams p;
  for (const auto& [key, v] : j.members()) {
    if (key == "scale") p.scale = static_cast<int>(v.as_int());
    else if (key == "edge_factor") p.edge_factor = v.as_double();
    else if (key == "a") p.a = v.as_double();
    else if (key == "b") p.b = v.as_double();
    else if (key == "c") p.c = v.as_double();
    else if (key == "d") p.d = v.as_double();
    else if (key == "noise") p.noise = v.as_bool();
    else if (key == "symmetric") p.symmetric = v.as_bool();
    else if (key == "remove_self_loops") p.remove_self_loops = v.as_bool();
    else if (key == "random_values") p.random_values = v.as_bool();
    else if (key == "seed") p.seed = static_cast<std::uint64_t>(v.as_int());
    else unknown_key("rmat params", key);
  }
  return p;
}

obs::Json protein_json(const ProteinParams& p) {
  obs::Json j = obs::Json::object();
  j.set("n", static_cast<std::int64_t>(p.n));
  j.set("min_family", static_cast<std::int64_t>(p.min_family));
  j.set("max_family", static_cast<std::int64_t>(p.max_family));
  j.set("family_exponent", p.family_exponent);
  j.set("within_density", p.within_density);
  j.set("cross_edges_per_node", p.cross_edges_per_node);
  j.set("diagonal", p.diagonal);
  j.set("seed", p.seed);
  return j;
}

ProteinParams protein_from_json(const obs::Json& j) {
  expect_object(j, "protein params");
  ProteinParams p;
  for (const auto& [key, v] : j.members()) {
    if (key == "n") p.n = v.as_int();
    else if (key == "min_family") p.min_family = v.as_int();
    else if (key == "max_family") p.max_family = v.as_int();
    else if (key == "family_exponent") p.family_exponent = v.as_double();
    else if (key == "within_density") p.within_density = v.as_double();
    else if (key == "cross_edges_per_node")
      p.cross_edges_per_node = v.as_double();
    else if (key == "diagonal") p.diagonal = v.as_bool();
    else if (key == "seed") p.seed = static_cast<std::uint64_t>(v.as_int());
    else unknown_key("protein params", key);
  }
  return p;
}

obs::Json mcl_json(const MclParams& p) {
  obs::Json j = obs::Json::object();
  j.set("inflation", p.inflation);
  j.set("prune_threshold", p.prune_threshold);
  j.set("keep_per_col", static_cast<std::int64_t>(p.keep_per_col));
  j.set("max_iterations", p.max_iterations);
  j.set("chaos_threshold", p.chaos_threshold);
  return j;
}

MclParams mcl_from_json(const obs::Json& j) {
  expect_object(j, "mcl params");
  MclParams p;
  for (const auto& [key, v] : j.members()) {
    if (key == "inflation") p.inflation = v.as_double();
    else if (key == "prune_threshold") p.prune_threshold = v.as_double();
    else if (key == "keep_per_col") p.keep_per_col = v.as_int();
    else if (key == "max_iterations")
      p.max_iterations = static_cast<int>(v.as_int());
    else if (key == "chaos_threshold") p.chaos_threshold = v.as_double();
    else unknown_key("mcl params", key);
  }
  return p;
}

}  // namespace

CscMat MatrixSource::materialize() const {
  switch (kind) {
    case Kind::kNone:
      throw InvalidArgument("jobspec: cannot materialize an empty source");
    case Kind::kFile:
      return CscMat::from_triples(read_matrix_market_file(path));
    case Kind::kEr:
      return generate_er(er);
    case Kind::kRmat:
      return generate_rmat(rmat);
    case Kind::kProtein:
      return generate_protein_similarity(protein).mat;
  }
  throw InvalidArgument("jobspec: unknown matrix source kind");
}

obs::Json MatrixSource::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("kind", kind_name(kind));
  switch (kind) {
    case Kind::kNone:
      break;
    case Kind::kFile:
      j.set("path", path);
      break;
    case Kind::kEr:
      j.set("er", er_json(er));
      break;
    case Kind::kRmat:
      j.set("rmat", rmat_json(rmat));
      break;
    case Kind::kProtein:
      j.set("protein", protein_json(protein));
      break;
  }
  return j;
}

MatrixSource MatrixSource::from_json(const obs::Json& j) {
  expect_object(j, "matrix source");
  MatrixSource src;
  for (const auto& [key, v] : j.members()) {
    if (key == "kind") src.kind = kind_from_name(v.as_string());
    else if (key == "path") src.path = v.as_string();
    else if (key == "er") src.er = er_from_json(v);
    else if (key == "rmat") src.rmat = rmat_from_json(v);
    else if (key == "protein") src.protein = protein_from_json(v);
    else unknown_key("matrix source", key);
  }
  return src;
}

MatrixSource MatrixSource::file(std::string p) {
  MatrixSource src;
  src.kind = Kind::kFile;
  src.path = std::move(p);
  return src;
}

MatrixSource MatrixSource::er_square(Index n, double nnz_per_col,
                                     std::uint64_t seed) {
  MatrixSource src;
  src.kind = Kind::kEr;
  src.er.nrows = n;
  src.er.ncols = n;
  src.er.nnz_per_col = nnz_per_col;
  src.er.seed = seed;
  return src;
}

MatrixSource MatrixSource::rmat_graph(int scale, double edge_factor,
                                      std::uint64_t seed) {
  MatrixSource src;
  src.kind = Kind::kRmat;
  src.rmat.scale = scale;
  src.rmat.edge_factor = edge_factor;
  src.rmat.seed = seed;
  return src;
}

MatrixSource MatrixSource::protein_network(Index n, std::uint64_t seed) {
  MatrixSource src;
  src.kind = Kind::kProtein;
  src.protein.n = n;
  src.protein.seed = seed;
  return src;
}

SummaOptions JobSpec::summa_options() const {
  SummaOptions opts;
  if (kernel == "hybrid") {
    opts.local_kind = SpGemmKind::kHybrid;
    opts.merge_kind = MergeKind::kSortedHeap;
  } else {
    opts.local_kind = SpGemmKind::kUnsortedHash;
    opts.merge_kind = MergeKind::kUnsortedHash;
  }
  opts.sort_final = sort_final;
  opts.pipeline = pipeline;
  opts.sparse_comm = sparse_comm;
  opts.threads = threads;
  opts.force_batches = force_batches;
  opts.adaptive_rebatch = adaptive_rebatch;
  opts.ckpt_job_tag = ckpt_job_tag;
  return opts;
}

vmpi::RunOptions JobSpec::run_options() const {
  vmpi::RunOptions opts;
  // An explicit (possibly disabled) plan: service jobs never pick up
  // CASP_VMPI_FAULTS from the environment.
  opts.faults = fault_spec.empty() ? vmpi::FaultPlan{}
                                   : vmpi::FaultPlan::parse(fault_spec);
  opts.capture_failure = true;
  opts.deadline_ms = deadline_ms;
  return opts;
}

vmpi::SupervisorOptions JobSpec::supervisor_options() const {
  vmpi::SupervisorOptions opts;
  opts.faults = fault_spec.empty() ? vmpi::FaultPlan{}
                                   : vmpi::FaultPlan::parse(fault_spec);
  if (max_restarts >= 0) opts.max_restarts = max_restarts;
  opts.deadline_ms = deadline_ms;
  return opts;
}

void JobSpec::validate() const {
  if (ranks < 1) throw InvalidArgument("jobspec: ranks must be >= 1");
  if (!Grid3D::valid_shape(ranks, layers))
    throw InvalidArgument(
        "jobspec: (ranks, layers) is not a valid grid (ranks/layers must "
        "be a perfect square)");
  if (kernel != "hash" && kernel != "hybrid")
    throw InvalidArgument("jobspec: kernel must be \"hash\" or \"hybrid\"");
  if (a.empty())
    throw InvalidArgument("jobspec: input matrix source `a` is required");
  if (aat && op != JobOp::kSpGemm)
    throw InvalidArgument("jobspec: aat applies to spgemm jobs only");
  if (!b.empty() && op != JobOp::kSpGemm)
    throw InvalidArgument("jobspec: operand `b` applies to spgemm jobs only");
  if (aat && !b.empty())
    throw InvalidArgument("jobspec: aat and an explicit `b` are exclusive");
  if (threads < 1) throw InvalidArgument("jobspec: threads must be >= 1");
  if (force_batches < 0)
    throw InvalidArgument("jobspec: force_batches must be >= 0");
  if (ckpt_every == 0)
    throw InvalidArgument("jobspec: ckpt_every must be >= 1");
  if (op == JobOp::kMcl) {
    if (mcl.inflation <= 0)
      throw InvalidArgument("jobspec: mcl inflation must be > 0");
    if (mcl.max_iterations < 1)
      throw InvalidArgument("jobspec: mcl max_iterations must be >= 1");
  }
  if (deadline_ms < 0)
    throw InvalidArgument("jobspec: deadline_ms must be >= 0");
  if (!fault_spec.empty()) {
    // Parse for the error only: a typoed plan must fail at submit, not
    // silently run fault-free at execution.
    (void)vmpi::FaultPlan::parse(fault_spec);
  }
}

obs::Json JobSpec::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("job_id", job_id);
  j.set("tenant", tenant);
  j.set("priority", priority);
  j.set("op", to_string(op));
  j.set("a", a.to_json());
  j.set("b", b.to_json());
  j.set("aat", aat);
  j.set("ranks", ranks);
  j.set("layers", layers);
  j.set("memory_bytes", memory_bytes);
  j.set("kernel", kernel);
  j.set("sort_final", sort_final);
  j.set("pipeline", pipeline);
  j.set("sparse_comm", sparse_comm);
  j.set("threads", threads);
  j.set("force_batches", static_cast<std::int64_t>(force_batches));
  j.set("adaptive_rebatch", adaptive_rebatch);
  j.set("ckpt_dir", ckpt_dir);
  j.set("ckpt_every", ckpt_every);
  j.set("ckpt_job_tag", ckpt_job_tag);
  j.set("mcl", mcl_json(mcl));
  j.set("fault_spec", fault_spec);
  j.set("max_restarts", max_restarts);
  j.set("deadline_ms", deadline_ms);
  j.set("elastic", elastic);
  return j;
}

JobSpec JobSpec::from_json(const obs::Json& j) {
  expect_object(j, "jobspec");
  JobSpec spec;
  for (const auto& [key, v] : j.members()) {
    if (key == "job_id") spec.job_id = v.as_string();
    else if (key == "tenant") spec.tenant = v.as_string();
    else if (key == "priority") spec.priority = static_cast<int>(v.as_int());
    else if (key == "op") spec.op = job_op_from_string(v.as_string());
    else if (key == "a") spec.a = MatrixSource::from_json(v);
    else if (key == "b") spec.b = MatrixSource::from_json(v);
    else if (key == "aat") spec.aat = v.as_bool();
    else if (key == "ranks") spec.ranks = static_cast<int>(v.as_int());
    else if (key == "layers") spec.layers = static_cast<int>(v.as_int());
    else if (key == "memory_bytes")
      spec.memory_bytes = static_cast<Bytes>(v.as_int());
    else if (key == "kernel") spec.kernel = v.as_string();
    else if (key == "sort_final") spec.sort_final = v.as_bool();
    else if (key == "pipeline") spec.pipeline = v.as_bool();
    else if (key == "sparse_comm") spec.sparse_comm = v.as_bool();
    else if (key == "threads") spec.threads = static_cast<int>(v.as_int());
    else if (key == "force_batches") spec.force_batches = v.as_int();
    else if (key == "adaptive_rebatch") spec.adaptive_rebatch = v.as_bool();
    else if (key == "ckpt_dir") spec.ckpt_dir = v.as_string();
    else if (key == "ckpt_every")
      spec.ckpt_every = static_cast<std::uint64_t>(v.as_int());
    else if (key == "ckpt_job_tag") spec.ckpt_job_tag = v.as_string();
    else if (key == "mcl") spec.mcl = mcl_from_json(v);
    else if (key == "fault_spec") spec.fault_spec = v.as_string();
    else if (key == "max_restarts")
      spec.max_restarts = static_cast<int>(v.as_int());
    else if (key == "deadline_ms") spec.deadline_ms = v.as_int();
    else if (key == "elastic") spec.elastic = v.as_bool();
    else unknown_key("jobspec", key);
  }
  return spec;
}

std::string JobSpec::dump() const { return to_json().dump(); }

JobSpec JobSpec::parse(const std::string& text) {
  return from_json(obs::Json::parse(text));
}

}  // namespace casp::svc
