// Admission control for the job service: decide, before a job is queued,
// whether its declared memory budget can possibly hold the multiplication.
//
// The decision reuses the paper's own machinery. A scratch virtual job
// (fault-free, outside the resident pool) distributes the already
// materialized inputs on the job's grid and runs the Algorithm 3 symbolic
// pass with an unlimited budget, which yields the per-process maxima
// (maxnnzA, maxnnzB, maxnnzC) that Eq. (2) needs:
//
//   b = r * maxnnzC / (M/p - r * (maxnnzA + maxnnzB))
//
// The Eq. (2) arithmetic is then applied serially here so a rejection can
// name its evidence (share, input bytes, the non-positive denominator)
// instead of surfacing as a MemoryError thrown mid-run on some rank.
#pragma once

#include <string>

#include "obs/job_report.hpp"
#include "sparse/csc_mat.hpp"
#include "svc/jobspec.hpp"

namespace casp::svc {

/// Eq. (2) verdict for one job. `admission` carries the numbers (recorded
/// in the job report either way); `reason` is the structured rejection
/// text, empty when the job fits.
struct AdmissionEstimate {
  obs::JobAdmission admission;
  std::string reason;
  bool fits() const { return admission.fits; }
};

/// Run the symbolic estimate for `spec` on its materialized operands.
/// `a`/`b` are the global operands (b may alias a for square self-products;
/// for MCL the operand is the similarity matrix itself, the per-iteration
/// budget gate the service enforces). Runs `spec.ranks` scratch ranks;
/// never throws MemoryError — an impossible budget comes back as
/// fits == false with the reason filled in.
AdmissionEstimate estimate_admission(const JobSpec& spec, const CscMat& a,
                                     const CscMat& b);

/// The memory the tenant's quota is charged while the job is resident:
/// the declared budget when one was given, otherwise the symbolic
/// estimate's r * (maxnnzA + maxnnzB + maxnnzC) over all ranks.
Bytes reservation_bytes(const JobSpec& spec, const obs::JobAdmission& a);

}  // namespace casp::svc
