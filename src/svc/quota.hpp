// Per-tenant accounting: memory reservations and cumulative traffic bills.
//
// Each tenant of the job service gets one TenantLedger. Memory is tracked
// with the same MemoryTracker the numeric kernels use — the ledger's budget
// is the tenant's memory quota, and every admitted job holds a reservation
// (the Eq. (2)-derived footprint) from submit until its terminal state, so
// a tenant cannot queue more aggregate work than its quota covers. Traffic
// is billed after each executed job from the run's TrafficStats ledgers:
// cumulative logical bytes (the Table II accounting) are compared against
// the traffic quota, and a tenant that exhausts it has its remaining jobs
// throttled while other tenants proceed.
#pragma once

#include <map>
#include <string>

#include "common/memory_tracker.hpp"
#include "common/types.hpp"
#include "obs/job_report.hpp"
#include "obs/json.hpp"
#include "vmpi/runtime.hpp"

namespace casp::svc {

/// Limits for one tenant; 0 means unlimited on either axis.
struct TenantQuota {
  Bytes memory_bytes = 0;   ///< max aggregate reserved bytes at any time
  Bytes traffic_bytes = 0;  ///< max cumulative billed logical bytes
};

/// Mutable per-tenant state: live reservations, cumulative bills, and the
/// per-phase logical-byte breakdown that reconciles against the paper's
/// Table II volumes.
class TenantLedger {
 public:
  TenantLedger() = default;
  TenantLedger(std::string name, TenantQuota quota)
      : name_(std::move(name)), quota_(quota), memory_(quota.memory_bytes) {}

  const std::string& name() const { return name_; }
  const TenantQuota& quota() const { return quota_; }

  // -- Memory reservations ---------------------------------------------------

  /// True iff a reservation of `bytes` could ever fit the quota (ignores
  /// what is currently live): the submit-time reject test.
  bool within_memory_quota(Bytes bytes) const {
    return quota_.memory_bytes == 0 || bytes <= quota_.memory_bytes;
  }
  /// Take a reservation; false when the quota is currently exhausted (the
  /// job stays queued unreserved and the scheduler retries).
  bool reserve(Bytes bytes) {
    try {
      memory_.allocate(bytes, "job reservation");
    } catch (const MemoryError&) {
      return false;
    }
    return true;
  }
  void release(Bytes bytes) { memory_.release(bytes); }
  Bytes reserved() const { return memory_.live(); }
  Bytes peak_reserved() const { return memory_.peak(); }

  // -- Traffic billing -------------------------------------------------------

  /// Fold one executed job's bill into the cumulative totals.
  void bill(const obs::JobBilling& bill, const vmpi::RunResult& run);
  Bytes traffic_billed() const { return logical_billed_; }
  /// True once the cumulative logical bytes meet the quota: subsequent
  /// jobs of this tenant are throttled.
  bool traffic_exhausted() const {
    return quota_.traffic_bytes != 0 && logical_billed_ >= quota_.traffic_bytes;
  }

  // -- Job counters ----------------------------------------------------------

  void count_job(const std::string& terminal_state) {
    ++jobs_by_state_[terminal_state];
  }

  /// "casp.tenant_report.v1": quotas, live/peak reservations, cumulative
  /// billing totals, the per-phase logical breakdown, and the job counts by
  /// terminal state. Deterministic for a deterministic job sequence.
  obs::Json report() const;

 private:
  std::string name_;
  TenantQuota quota_;
  MemoryTracker memory_;
  std::uint64_t messages_billed_ = 0;
  Bytes logical_billed_ = 0;
  Bytes shipped_billed_ = 0;
  int restarts_billed_ = 0;
  /// Phase name -> cumulative logical bytes (Table II rows).
  std::map<std::string, Bytes> logical_by_phase_;
  std::map<std::string, std::uint64_t> jobs_by_state_;
};

}  // namespace casp::svc
