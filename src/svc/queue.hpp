// JobQueue: the service's pending-job order — deadline-aware EDF over
// strict priority, O(n) operations over a small deterministic vector.
//
// Jobs carrying a deadline (JobSpec::deadline_ms > 0) form the urgent
// class and always run before deadline-free jobs; within the class the
// earliest deadline wins (EDF), ties break on priority then submission
// sequence. Deadline-free jobs keep the legacy order: strict priority,
// FIFO within a priority. Nothing breaks ties on clock or pointer
// identity, so two runs of the same submission sequence schedule
// identically (the property the check.sh double-drain compares).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace casp::svc {

class JobQueue {
 public:
  /// `deadline_ms` is the job's JobSpec::deadline_ms (0 = no deadline; the
  /// job schedules in the legacy priority/FIFO class).
  void push(std::string job_id, int priority, std::int64_t deadline_ms = 0) {
    entries_.push_back(
        Entry{std::move(job_id), priority, deadline_ms, next_seq_++});
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Remove and return the id of the next job under the EDF-over-priority
  /// order described above. Precondition: !empty().
  std::string pop() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (before(entries_[i], entries_[best])) best = i;
    }
    std::string id = std::move(entries_[best].job_id);
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(best));
    return id;
  }

  /// Remove a queued job (cancellation). False if not queued.
  bool remove(const std::string& job_id) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].job_id == job_id) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool contains(const std::string& job_id) const {
    for (const Entry& e : entries_)
      if (e.job_id == job_id) return true;
    return false;
  }

 private:
  struct Entry {
    std::string job_id;
    int priority;
    std::int64_t deadline_ms;
    std::uint64_t seq;
  };

  static bool before(const Entry& a, const Entry& b) {
    const bool a_urgent = a.deadline_ms > 0;
    const bool b_urgent = b.deadline_ms > 0;
    if (a_urgent != b_urgent) return a_urgent;  // deadline class first
    if (a_urgent && a.deadline_ms != b.deadline_ms)
      return a.deadline_ms < b.deadline_ms;  // EDF within the class
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  }

  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace casp::svc
