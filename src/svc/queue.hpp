// JobQueue: the service's pending-job order — strict priority, FIFO within
// a priority, O(n) operations over a small deterministic vector. Higher
// priority runs first; ties break on submission sequence, never on clock or
// pointer identity, so two runs of the same submission sequence schedule
// identically (the property the check.sh soak compares).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace casp::svc {

class JobQueue {
 public:
  void push(std::string job_id, int priority) {
    entries_.push_back(Entry{std::move(job_id), priority, next_seq_++});
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Remove and return the id of the highest-priority (earliest-submitted
  /// within the priority) job. Precondition: !empty().
  std::string pop() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].priority > entries_[best].priority ||
          (entries_[i].priority == entries_[best].priority &&
           entries_[i].seq < entries_[best].seq))
        best = i;
    }
    std::string id = std::move(entries_[best].job_id);
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(best));
    return id;
  }

  /// Remove a queued job (cancellation). False if not queued.
  bool remove(const std::string& job_id) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].job_id == job_id) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool contains(const std::string& job_id) const {
    for (const Entry& e : entries_)
      if (e.job_id == job_id) return true;
    return false;
  }

 private:
  struct Entry {
    std::string job_id;
    int priority;
    std::uint64_t seq;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace casp::svc
