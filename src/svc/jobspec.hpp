// JobSpec: the one job-description API of the multi-tenant SpGEMM service.
//
// Every workload the repo can run — SpGEMM, Markov clustering, triangle
// counting — used to be configured through three disjoint option structs
// (SummaOptions, vmpi::RunOptions, vmpi::SupervisorOptions) plus per-CLI
// flag handling. JobSpec consolidates all of it into a single plain value
// type: the operation, the input matrices (files or seeded generators, so
// a spec is self-contained and two runs of the same spec see identical
// inputs), the grid shape, the memory budget, every SUMMA/checkpoint knob,
// the fault plan, and the supervision policy — plus the service-side
// identity (tenant, priority). The existing structs stay as thin views
// built by summa_options()/run_options()/supervisor_options(); non-test
// callers build a JobSpec and derive them (casp_lint rule:
// jobspec-single-source).
//
// Specs round-trip deterministically through obs::Json: to_json() emits
// every field in a fixed order, from_json() is strict (unknown keys throw),
// and to_json(from_json(to_json(s))) is byte-identical to to_json(s).
#pragma once

#include <optional>
#include <string>

#include "apps/mcl.hpp"
#include "common/types.hpp"
#include "gen/er.hpp"
#include "gen/protein.hpp"
#include "gen/rmat.hpp"
#include "obs/json.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"
#include "vmpi/runtime.hpp"

namespace casp::svc {

/// Operation a job performs on the grid.
enum class JobOp { kSpGemm, kMcl, kTriangleCount };

const char* to_string(JobOp op);
JobOp job_op_from_string(const std::string& name);

/// Where an input matrix comes from. File sources read Matrix Market;
/// generator sources are fully seeded, so materialize() is deterministic —
/// the property the admission estimate, the JSON round-trip, and the
/// soak's bit-identity comparison all rely on.
struct MatrixSource {
  enum class Kind { kNone, kFile, kEr, kRmat, kProtein };
  Kind kind = Kind::kNone;
  std::string path;       ///< kFile
  ErParams er;            ///< kEr
  RmatParams rmat;        ///< kRmat
  ProteinParams protein;  ///< kProtein

  bool empty() const { return kind == Kind::kNone; }
  /// Load/generate the matrix. Throws InputError on a missing file.
  CscMat materialize() const;

  obs::Json to_json() const;
  static MatrixSource from_json(const obs::Json& j);

  static MatrixSource file(std::string p);
  static MatrixSource er_square(Index n, double nnz_per_col,
                                std::uint64_t seed);
  static MatrixSource rmat_graph(int scale, double edge_factor,
                                 std::uint64_t seed);
  static MatrixSource protein_network(Index n, std::uint64_t seed);
};

/// The unified job description. Plain data only: the non-owning pointers of
/// SummaOptions (memory tracker, checkpointer, symbolic spans) are wired by
/// the executor at run time, never stored here.
struct JobSpec {
  // -- Service identity ----------------------------------------------------
  /// Unique id within a queue; Server::submit assigns "job-<n>" when empty.
  std::string job_id;
  /// Quota/billing bucket. Empty = the default tenant.
  std::string tenant = "default";
  /// Higher runs first; FIFO within a priority.
  int priority = 0;

  // -- Work ----------------------------------------------------------------
  JobOp op = JobOp::kSpGemm;
  MatrixSource a;
  /// SpGEMM only. Empty = square A (or A*Aᵀ when `aat`).
  MatrixSource b;
  /// SpGEMM only: multiply A by its transpose (ignores `b`).
  bool aat = false;

  // -- Grid ----------------------------------------------------------------
  int ranks = 4;
  int layers = 1;

  // -- Memory budget (Eq. 2's M, aggregate over the job's ranks) -----------
  Bytes memory_bytes = 0;  ///< 0 = unlimited (b = 1)

  // -- SUMMA knobs (value mirror of SummaOptions) --------------------------
  /// "hash" (this paper's unsorted-hash kernels) or "hybrid" (prior work).
  std::string kernel = "hash";
  bool sort_final = true;
  bool pipeline = true;
  bool sparse_comm = false;
  int threads = 1;
  Index force_batches = 0;
  bool adaptive_rebatch = true;

  // -- Checkpoint knobs ----------------------------------------------------
  std::string ckpt_dir;          ///< empty = checkpointing off
  std::uint64_t ckpt_every = 1;  ///< save cadence in batches/iterations
  std::string ckpt_job_tag;      ///< extra disambiguator for the snapshot id

  // -- MCL parameters (JobOp::kMcl only) -----------------------------------
  MclParams mcl;

  // -- Faults + supervision ------------------------------------------------
  /// FaultPlan::parse spec (e.g. "seed=1;crash_rank=2;crash_op=40").
  /// Empty = fault-free: a service job never inherits CASP_VMPI_FAULTS from
  /// the environment — one tenant's chaos experiment must be scoped to its
  /// own jobs.
  std::string fault_spec;
  /// >= 0 turns on supervised restarts with this bound; < 0 runs a single
  /// attempt (a non-empty ckpt_dir also turns supervision on, with the
  /// default bound).
  int max_restarts = -1;
  /// Wall-clock budget for the job in milliseconds; 0 = none. Spans the
  /// whole supervised chain (each restart attempt gets what is left).
  /// Enforced cooperatively by the vmpi watchdog: on expiry every rank is
  /// cancelled and the job fails with kind "deadline_exceeded", releasing
  /// its tenant reservation. Not enforced under the deterministic
  /// scheduler (virtual time).
  std::int64_t deadline_ms = 0;
  /// Permit degraded-grid recovery: when a rank dies for good
  /// (permanent_crash, or restarts exhausted), the service re-runs Eq. (2)
  /// admission for the largest survivor grid, redistributes the job's
  /// checkpoints onto it (ckpt/redistribute.hpp), and finishes there —
  /// bit-identically. Off = a permanent loss fails the job.
  bool elastic = false;

  // -- Thin views over the legacy option structs ---------------------------
  /// SummaOptions value fields filled from this spec; the pointer fields
  /// (memory, ckpt, symbolic_col_nnz) are left null for the executor.
  SummaOptions summa_options() const;
  /// RunOptions for one unsupervised attempt: the parsed fault plan (or an
  /// explicitly disabled one) and capture_failure = true.
  vmpi::RunOptions run_options() const;
  vmpi::SupervisorOptions supervisor_options() const;
  bool supervised() const { return max_restarts >= 0 || !ckpt_dir.empty(); }

  /// Structural validation (grid shape, kernel name, operand presence,
  /// parseable fault spec, ...). Throws InvalidArgument naming the field.
  void validate() const;

  obs::Json to_json() const;
  static JobSpec from_json(const obs::Json& j);
  /// Compact deterministic serialization (to_json().dump()).
  std::string dump() const;
  static JobSpec parse(const std::string& text);
};

}  // namespace casp::svc
