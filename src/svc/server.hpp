// The multi-tenant job service: a JobQueue of JobSpecs executed on one
// resident vmpi::RankPool, with admission control, per-tenant quotas, and
// per-job reports.
//
// Lifecycle of a submitted job:
//
//   submit ── validate ── materialize inputs ── Eq. (2) admission estimate
//     ├─ estimate says the declared budget cannot hold the inputs → REJECTED
//     ├─ reservation exceeds the tenant's memory quota outright   → REJECTED
//     ├─ tenant's traffic quota already exhausted                 → THROTTLED
//     └─ else: reserve memory (or queue unreserved and retry) and QUEUE
//   schedule (priority order, FIFO within priority; re-checks throttling)
//   execute on the resident pool (supervised when the spec asks for it;
//     one tenant's injected crash is scoped to its own job — the pool
//     survives and the next job runs on the same resident threads)
//     ├─ permanent_crash: the rank is marked dead in the pool's health map.
//     │  Elastic jobs re-run Eq. (2) admission for the largest survivor
//     │  grid, redistribute their checkpoints onto it
//     │  (ckpt/redistribute.hpp) and finish there — bit-identically;
//     │  non-elastic jobs fail with the classified reason.
//     └─ deadline_exceeded: the watchdog cancelled the job at its
//        JobSpec::deadline_ms budget; the reservation is released and the
//        next job runs immediately.
//   DONE / FAILED ── bill traffic ── release reservation
//
// Scheduling is deadline-aware EDF over priority (see svc/queue.hpp) and,
// with ServerOptions::concurrency > 1, independent jobs dispatch onto
// DISJOINT pool splits concurrently: drain() keeps up to K jobs in flight,
// each on its own member set, and collects them oldest-first. Every
// scheduling decision still happens on the caller's thread from
// launcher-deterministic state (queue order, health map, the launcher's own
// busy-set — never a racy "is that thread done yet" probe), so two drains
// of the same submission sequence schedule identically — the property the
// soak and double-drain checks compare. Health is per split: a permanent
// crash marks only ranks of the owning job's split dead, and that job
// shrinks onto its own survivors while its neighbours run untouched.
//
// With ServerOptions::auto_rejoin, membership self-heals (DESIGN.md §5k):
// a crashed rank's replacement enters probation immediately, elastic
// SpGEMM jobs that shrank pause at a batch boundary so the probationers
// can handshake back in, and the next round regrows the grid — re-running
// Eq. (2) admission for the larger shape and redistributing checkpoints
// onto it — recording regrown_from/to evidence in the recovery report.
//
// std::thread ownership stays inside src/vmpi (the repo's threading lint
// boundary); the server only launches and collects pool tickets.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/mcl.hpp"
#include "ckpt/redistribute.hpp"
#include "obs/job_report.hpp"
#include "sparse/csc_mat.hpp"
#include "svc/jobspec.hpp"
#include "svc/queue.hpp"
#include "svc/quota.hpp"
#include "vmpi/pool.hpp"

namespace casp::svc {

/// Lifecycle states. Terminal: everything except kQueued/kRunning.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,     ///< executed, ended with a FailureReport
  kRejected,   ///< refused at submit (admission or quota), never ran
  kCancelled,  ///< removed from the queue before running
  kThrottled,  ///< tenant's traffic quota exhausted; never ran
};

const char* to_string(JobState s);

inline bool is_terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

/// Everything the server knows about one submitted job.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::kQueued;
  /// Structured reason for rejected/cancelled/throttled/failed states.
  std::string reason;
  obs::JobAdmission admission;
  /// Reservation charged to the tenant while queued/running (0 after a
  /// terminal state releases it).
  Bytes reserved_bytes = 0;
  bool holds_reservation = false;

  /// Operands materialized at submit (admission needs them; execution
  /// reuses them so the estimate and the run see identical inputs).
  CscMat in_a;
  CscMat in_b;

  // Outputs (valid in state kDone, per op):
  CscMat c;                  ///< kSpGemm: the gathered product
  Index batches = 1;         ///< kSpGemm: Eq. (2) batch count used
  Index final_batches = 1;   ///< kSpGemm: after adaptive re-batching
  MclResult mcl;             ///< kMcl
  Index triangles = 0;       ///< kTriangleCount

  /// Per-job "casp.job_report.v1" document; complete once terminal.
  obs::JobReport report;

  /// Raw run telemetry (timers, traffic, fault events) for jobs that
  /// executed; lets clients write Chrome traces without re-running.
  vmpi::RunResult run_result;

  /// Transient per-attempt pause plumbing (kSpGemm regrow path): the
  /// scheduler arms attempt_pause before dispatching an attempt that should
  /// park after that many fresh batches (0 = run to completion); rank 0 of
  /// the attempt acknowledges in attempt_paused. Reset every round.
  Index attempt_pause = 0;
  bool attempt_paused = false;

  bool terminal() const { return is_terminal(state); }
};

struct ServerOptions {
  /// Resident pool width. Jobs may use fewer ranks (the pool splits);
  /// a spec asking for more is rejected at submit.
  int pool_ranks = 4;
  /// Per-tenant limits; tenants not listed run unlimited.
  std::map<std::string, TenantQuota> quotas;
  /// Max jobs in flight on disjoint pool splits during drain(). 1 = the
  /// legacy serial drain. Clamped to 1 while a CASP_VMPI_SCHED plan is
  /// active (one deterministic-scheduler state exists per process).
  int concurrency = 1;
  /// Self-healing membership: a permanent crash's rank automatically
  /// requests re-join (kDead -> kProbation), shrunk elastic SpGEMM jobs
  /// pause at a batch boundary to handshake probationers back in, and the
  /// grid regrows onto the admitted ranks.
  bool auto_rejoin = false;
  /// Probation handshake knobs used by the regrow path.
  vmpi::MembershipOptions membership;
};

/// In-process service front end. Not thread-safe: one client drives it.
class Server {
 public:
  explicit Server(ServerOptions options);

  /// Admit and queue a job; returns its id (assigned "job-<n>" when the
  /// spec left job_id empty). Structural errors (bad spec, unreadable
  /// input, duplicate id, ranks > pool) throw InvalidArgument; policy
  /// refusals (admission, quota) come back as a terminal kRejected /
  /// kThrottled record, never as an exception.
  std::string submit(JobSpec spec);

  /// Remove a queued job before it runs. False when the job is already
  /// running, terminal, or unknown.
  bool cancel(const std::string& job_id);

  /// Drive the queue until `job_id` reaches a terminal state; returns its
  /// record. Throws InvalidArgument for an unknown id.
  const JobRecord& wait(const std::string& job_id);

  /// Drive the queue until empty.
  void drain();

  const JobRecord* find(const std::string& job_id) const;
  /// Ids in submission order (includes terminal jobs).
  const std::vector<std::string>& job_ids() const { return order_; }

  TenantLedger& tenant(const std::string& name);
  /// "casp.tenant_report.v1" for one tenant.
  obs::Json tenant_report(const std::string& name);
  /// All per-job reports (submission order) as a JSON array.
  obs::Json job_reports_json(bool deterministic) const;

  vmpi::RankPool& pool() { return pool_; }

 private:
  /// Per-job execution state: the grid the next round runs on, the
  /// redistributed-resume cache, the cumulative bill/recovery evidence, and
  /// the in-flight attempt's ticket + supervision-chain accumulators.
  /// Defined in server.cpp; the serial execute() and the concurrent drain
  /// share it.
  struct Exec;
  enum class RoundStart {
    kStarted,     ///< attempt dispatched (Exec::ticket set)
    kTerminal,    ///< the job reached a terminal state at the round top
    kNoCapacity,  ///< enough ranks alive, but busy on other splits — retry
  };

  /// Execute the best runnable queued job, if any. Returns false when the
  /// queue made no progress (empty).
  bool step();
  void execute(JobRecord& rec);
  /// Top-of-round grid decision (shrink / regrow / fail) + dispatch.
  RoundStart begin_round(Exec& e);
  /// Dispatch one attempt of the current round as an async pool ticket.
  void start_attempt(Exec& e);
  /// Collect the in-flight ticket and advance: relaunch the supervision
  /// chain, start the next round, or finish the job. Leaves Exec::ticket
  /// null exactly when the job is terminal or waiting for capacity.
  void complete_attempt(Exec& e);
  /// Concurrent drain: up to `width` jobs in flight on disjoint splits.
  void drain_concurrent(int width);
  int effective_concurrency() const;
  /// One attempt's rank-local body. `layers` and `resume` override the
  /// spec's grid shape and inject redistributed checkpoint state on
  /// degraded relaunches (resume is null on the normal path).
  void run_body(JobRecord& rec, vmpi::Comm& world, int layers,
                const ckpt::ResumeCache* resume);
  void finish(JobRecord& rec, JobState state, std::string reason);
  void release_reservation(JobRecord& rec);

  ServerOptions options_;
  vmpi::RankPool pool_;
  JobQueue queue_;
  std::map<std::string, std::unique_ptr<JobRecord>> jobs_;
  std::vector<std::string> order_;
  std::map<std::string, TenantLedger> tenants_;
  std::uint64_t next_job_ = 0;
  /// Pool ranks held by a dispatched-but-uncollected attempt. Kept by the
  /// launcher (not read back from slot state) so capacity decisions depend
  /// only on launcher-visible history, never on how far a worker thread
  /// happens to have gotten — the determinism invariant of the drain.
  std::vector<char> busy_;
};

}  // namespace casp::svc
