// Sequence-by-k-mer matrix generator (Rice-kmers / Metaclust20m analog).
//
// BELLA [7] and PASTIS [15] build a tall-thin matrix A whose rows are reads
// (sequences) and whose columns are k-mers; A(i, j) != 0 iff read i contains
// k-mer j. A·A^T then counts shared k-mers between every pair of reads
// without quadratic all-pairs cost. We model reads as intervals over a
// circular genome: read i covers genome positions [s_i, s_i + len_i) and
// the k-mer ids are genome positions, so two reads share exactly
// |interval intersection| k-mers — an exact, checkable ground truth for the
// overlap application.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

struct KmerParams {
  /// Number of reads (rows of A).
  Index num_reads = 1 << 12;
  /// Genome length (columns of A = distinct k-mers).
  Index genome_length = 1 << 14;
  /// Read length range (uniform).
  Index min_read_len = 24;
  Index max_read_len = 64;
  /// Fraction of a read's k-mers retained (BELLA subsamples k-mers;
  /// Rice-kmers keeps "a subset of the k-mers").
  double kmer_keep_fraction = 0.5;
  std::uint64_t seed = 1;
};

struct KmerMatrix {
  /// num_reads x genome_length, A(i, p) = 1 if read i retained k-mer p.
  CscMat mat;
  /// Interval [start, start+len) covered by each read (ground truth).
  std::vector<Index> read_start;
  std::vector<Index> read_len;

  /// Exact overlap length of reads i and j on the circular genome.
  Index true_overlap(Index i, Index j) const;
};

KmerMatrix generate_kmer_matrix(const KmerParams& params);

}  // namespace casp
