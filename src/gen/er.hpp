// Erdős–Rényi–style random sparse matrices.
//
// The baseline workload for kernel correctness tests and microbenches; also
// the model the communication-optimality literature analyzes (Ballard et
// al. [37] study ER inputs).
#pragma once

#include "common/rng.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

struct ErParams {
  Index nrows = 0;
  Index ncols = 0;
  /// Expected nonzeros per column; each column draws this many positions
  /// uniformly with replacement and duplicates are merged, so the realized
  /// count is slightly lower at high density.
  double nnz_per_col = 4.0;
  /// Values are uniform in (0, 1] when true, else exactly 1.0.
  bool random_values = true;
  std::uint64_t seed = 1;
};

/// Generate an ER matrix as canonical CSC.
CscMat generate_er(const ErParams& params);

/// Convenience: square n x n ER matrix with d nonzeros/column.
CscMat generate_er_square(Index n, double d, std::uint64_t seed = 1);

}  // namespace casp
