// R-MAT / Kronecker power-law graph generator (Graph500 parameters).
//
// Stand-in for the Friendster social network: heavy-tailed degree
// distribution, square, nnz(C) far larger than nnz(A) when squared — the
// regime where batching matters (Table V: Friendster nnz(A)=3.6B,
// nnz(A^2)=1T).
#pragma once

#include "common/rng.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

struct RmatParams {
  /// Matrix dimension is 2^scale.
  int scale = 12;
  /// Expected edges per vertex (Graph500 uses 16).
  double edge_factor = 8.0;
  /// Quadrant probabilities; Graph500 defaults. Must sum to ~1.
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  /// Add noise to quadrant probabilities at each level ("smooth" R-MAT,
  /// avoids exact self-similar artifacts).
  bool noise = true;
  /// Make the matrix pattern symmetric (undirected graph).
  bool symmetric = true;
  /// Drop self-loops.
  bool remove_self_loops = true;
  bool random_values = true;
  std::uint64_t seed = 1;
};

/// Generate an R-MAT graph adjacency matrix as canonical CSC.
CscMat generate_rmat(const RmatParams& params);

}  // namespace casp
