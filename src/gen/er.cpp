#include "gen/er.hpp"

#include "common/error.hpp"

namespace casp {

CscMat generate_er(const ErParams& params) {
  CASP_CHECK(params.nrows >= 0 && params.ncols >= 0 && params.nnz_per_col >= 0);
  TripleMat triples(params.nrows, params.ncols);
  if (params.nrows == 0 || params.ncols == 0) {
    return CscMat::from_triples(std::move(triples));
  }
  Rng root(params.seed);
  triples.reserve(static_cast<Index>(params.nnz_per_col *
                                     static_cast<double>(params.ncols)));
  for (Index j = 0; j < params.ncols; ++j) {
    Rng rng = root.fork(static_cast<std::uint64_t>(j));
    // Integer part deterministic, fractional part Bernoulli, so expected
    // column degree matches nnz_per_col exactly.
    Index d = static_cast<Index>(params.nnz_per_col);
    if (rng.uniform() < params.nnz_per_col - static_cast<double>(d)) ++d;
    for (Index k = 0; k < d; ++k) {
      const Index r = rng.range(0, params.nrows);
      const Value v = params.random_values ? 1.0 - rng.uniform() : Value{1};
      triples.push_back(r, j, v);
    }
  }
  return CscMat::from_triples(std::move(triples));
}

CscMat generate_er_square(Index n, double d, std::uint64_t seed) {
  ErParams p;
  p.nrows = n;
  p.ncols = n;
  p.nnz_per_col = d;
  p.seed = seed;
  return generate_er(p);
}

}  // namespace casp
