#include "gen/protein.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace casp {

namespace {
/// Sample a family size from a truncated power law P(s) ~ s^-exponent via
/// inverse transform on the continuous approximation.
Index sample_family_size(Rng& rng, const ProteinParams& p) {
  const double lo = static_cast<double>(p.min_family);
  const double hi = static_cast<double>(p.max_family);
  const double e = 1.0 - p.family_exponent;  // integral exponent
  const double u = rng.uniform();
  double s;
  if (std::abs(e) < 1e-12) {
    s = lo * std::pow(hi / lo, u);
  } else {
    const double lo_e = std::pow(lo, e);
    const double hi_e = std::pow(hi, e);
    s = std::pow(lo_e + u * (hi_e - lo_e), 1.0 / e);
  }
  return std::clamp(static_cast<Index>(s), p.min_family, p.max_family);
}
}  // namespace

ProteinMatrix generate_protein_similarity(const ProteinParams& params) {
  CASP_CHECK(params.n > 0 && params.min_family >= 1 &&
             params.max_family >= params.min_family);
  CASP_CHECK(params.within_density > 0.0 && params.within_density <= 1.0);

  Rng rng(params.seed);
  ProteinMatrix out;
  out.family_of.assign(static_cast<std::size_t>(params.n), -1);

  // Carve the vertex range into consecutive families of power-law size.
  std::vector<std::pair<Index, Index>> families;  // [start, end)
  Index v = 0;
  Index family_id = 0;
  while (v < params.n) {
    const Index size = std::min(sample_family_size(rng, params), params.n - v);
    families.emplace_back(v, v + size);
    for (Index u = v; u < v + size; ++u)
      out.family_of[static_cast<std::size_t>(u)] = family_id;
    v += size;
    ++family_id;
  }

  TripleMat triples(params.n, params.n);
  // Within-family edges: geometric skipping over the pair sequence so the
  // cost is proportional to the number of edges, not candidate pairs.
  for (const auto& [start, end] : families) {
    const Index size = end - start;
    const double q = params.within_density;
    if (size < 2) continue;
    const double log1mq = std::log(1.0 - q);
    const std::uint64_t npairs =
        static_cast<std::uint64_t>(size) * static_cast<std::uint64_t>(size - 1) / 2;
    std::uint64_t idx = 0;
    if (q < 1.0) {
      // First candidate pair index via geometric distribution.
      idx = static_cast<std::uint64_t>(std::log(1.0 - rng.uniform()) / log1mq);
    }
    while (idx < npairs) {
      // Decode pair index -> (i, j) with i < j within the family.
      const double fi =
          (2.0 * static_cast<double>(size) - 1.0 -
           std::sqrt((2.0 * static_cast<double>(size) - 1.0) *
                         (2.0 * static_cast<double>(size) - 1.0) -
                     8.0 * static_cast<double>(idx))) /
          2.0;
      Index i = static_cast<Index>(fi);
      // Guard against floating point rounding on the triangular decode.
      auto row_base = [size](Index r) {
        return static_cast<std::uint64_t>(r) *
                   (2 * static_cast<std::uint64_t>(size) - static_cast<std::uint64_t>(r) - 1) / 2;
      };
      while (i > 0 && row_base(i) > idx) --i;
      while (i + 1 < size && row_base(i + 1) <= idx) ++i;
      const Index j = i + 1 + static_cast<Index>(idx - row_base(i));
      const Index gi = start + i;
      const Index gj = start + j;
      // Similarity score in (0.3, 1]: families are "high similarity".
      const Value s = 0.3 + 0.7 * (1.0 - rng.uniform());
      triples.push_back(gi, gj, s);
      triples.push_back(gj, gi, s);
      if (q >= 1.0) {
        ++idx;
      } else {
        idx += 1 + static_cast<std::uint64_t>(std::log(1.0 - rng.uniform()) / log1mq);
      }
    }
  }

  // Cross-family noise edges with low similarity scores.
  const Index cross =
      static_cast<Index>(params.cross_edges_per_node * static_cast<double>(params.n));
  for (Index e = 0; e < cross; ++e) {
    const Index a = rng.range(0, params.n);
    const Index b = rng.range(0, params.n);
    if (a == b) continue;
    const Value s = 0.05 + 0.15 * (1.0 - rng.uniform());
    triples.push_back(a, b, s);
    triples.push_back(b, a, s);
  }

  if (params.diagonal) {
    for (Index u = 0; u < params.n; ++u) triples.push_back(u, u, 1.0);
  }

  // canonicalize() sums duplicate pairs; clamp back into (0, 1] to keep the
  // similarity interpretation.
  CscMat mat = CscMat::from_triples(std::move(triples));
  for (Value& val : mat.vals_mutable()) val = std::min(val, Value{1});
  out.mat = std::move(mat);
  return out;
}

}  // namespace casp
