// Protein-similarity network generator.
//
// Synthetic analog of Eukarya / Isolates / Metaclust50 (Table V): proteins
// form families; similarities are dense inside a family and rare across
// families. Family sizes follow a truncated power law, giving the skewed
// per-column work and the nnz(A^2) >> nnz(A) blow-up that forces batching:
// squaring connects all second-hop pairs inside a family, so big families
// quadratically inflate the output exactly like the paper's HipMCL inputs.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

struct ProteinParams {
  /// Number of proteins (matrix is n x n, symmetric, unit diagonal).
  Index n = 1 << 14;
  /// Smallest / largest family size (power-law in between).
  Index min_family = 4;
  Index max_family = 512;
  /// Power-law exponent for family sizes (larger -> fewer big families).
  double family_exponent = 2.0;
  /// Probability that a within-family pair is connected.
  double within_density = 0.3;
  /// Expected number of cross-family edges per protein (noise).
  double cross_edges_per_node = 0.5;
  /// Include the diagonal (self-similarity = 1), as HipMCL inputs do.
  bool diagonal = true;
  std::uint64_t seed = 1;
};

struct ProteinMatrix {
  CscMat mat;
  /// family_of[v] = planted family id of protein v; ground truth for the
  /// Markov-clustering application tests.
  std::vector<Index> family_of;
};

ProteinMatrix generate_protein_similarity(const ProteinParams& params);

}  // namespace casp
