#include "gen/kmer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace casp {

Index KmerMatrix::true_overlap(Index i, Index j) const {
  const Index si = read_start[static_cast<std::size_t>(i)];
  const Index ei = si + read_len[static_cast<std::size_t>(i)];
  const Index sj = read_start[static_cast<std::size_t>(j)];
  const Index ej = sj + read_len[static_cast<std::size_t>(j)];
  return std::max<Index>(0, std::min(ei, ej) - std::max(si, sj));
}

KmerMatrix generate_kmer_matrix(const KmerParams& params) {
  CASP_CHECK(params.num_reads > 0 && params.genome_length > 0);
  CASP_CHECK(params.min_read_len >= 1 &&
             params.max_read_len >= params.min_read_len &&
             params.max_read_len <= params.genome_length);
  CASP_CHECK(params.kmer_keep_fraction > 0.0 &&
             params.kmer_keep_fraction <= 1.0);

  Rng rng(params.seed);
  KmerMatrix out;
  out.read_start.resize(static_cast<std::size_t>(params.num_reads));
  out.read_len.resize(static_cast<std::size_t>(params.num_reads));

  TripleMat triples(params.num_reads, params.genome_length);
  for (Index i = 0; i < params.num_reads; ++i) {
    const Index len = rng.range(params.min_read_len, params.max_read_len + 1);
    const Index start = rng.range(0, params.genome_length - len + 1);
    out.read_start[static_cast<std::size_t>(i)] = start;
    out.read_len[static_cast<std::size_t>(i)] = len;
    for (Index p = start; p < start + len; ++p) {
      if (rng.uniform() < params.kmer_keep_fraction)
        triples.push_back(i, p, 1.0);
    }
  }
  out.mat = CscMat::from_triples(std::move(triples));
  return out;
}

}  // namespace casp
