#include "gen/rmat.hpp"

#include <cmath>

#include "common/error.hpp"

namespace casp {

CscMat generate_rmat(const RmatParams& params) {
  CASP_CHECK(params.scale >= 0 && params.scale < 40);
  CASP_CHECK(std::abs(params.a + params.b + params.c + params.d - 1.0) < 1e-9);
  const Index n = Index{1} << params.scale;
  const Index edges = static_cast<Index>(params.edge_factor *
                                         static_cast<double>(n));
  TripleMat triples(n, n);
  triples.reserve(params.symmetric ? 2 * edges : edges);
  Rng rng(params.seed);
  for (Index e = 0; e < edges; ++e) {
    Index row = 0, col = 0;
    double pa = params.a, pb = params.b, pc = params.c;
    for (int level = 0; level < params.scale; ++level) {
      double qa = pa, qb = pb, qc = pc;
      if (params.noise) {
        // +-5% multiplicative noise per level, renormalized implicitly by
        // comparing against the noisy cumulative boundaries.
        qa *= 0.95 + 0.1 * rng.uniform();
        qb *= 0.95 + 0.1 * rng.uniform();
        qc *= 0.95 + 0.1 * rng.uniform();
        const double qd = (1.0 - pa - pb - pc) * (0.95 + 0.1 * rng.uniform());
        const double norm = qa + qb + qc + qd;
        qa /= norm;
        qb /= norm;
        qc /= norm;
      }
      const double u = rng.uniform();
      row <<= 1;
      col <<= 1;
      if (u < qa) {
        // top-left quadrant: no bits set
      } else if (u < qa + qb) {
        col |= 1;
      } else if (u < qa + qb + qc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (params.remove_self_loops && row == col) continue;
    const Value v = params.random_values ? 1.0 - rng.uniform() : Value{1};
    triples.push_back(row, col, v);
    if (params.symmetric) triples.push_back(col, row, v);
  }
  return CscMat::from_triples(std::move(triples));
}

}  // namespace casp
