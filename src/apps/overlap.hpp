// Sequence overlap detection via A*A^T (application (c) of Sec. V-B; the
// BELLA [7] / PASTIS [15] pattern, evaluated in Figs. 10-11).
//
// A is reads x k-mers; (A*A^T)(i,j) counts the k-mers shared by reads i
// and j — all-pairs overlap without quadratic cost, because only pairs
// sharing at least one k-mer materialize. Candidates are filtered by a
// minimum shared-k-mer threshold batch by batch, so the full (dense-ish)
// similarity matrix never exists.
#pragma once

#include <vector>

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

struct OverlapPair {
  Index read_a = 0;  ///< smaller read id
  Index read_b = 0;  ///< larger read id
  double shared = 0.0;  ///< number of shared k-mers

  friend bool operator==(const OverlapPair& x, const OverlapPair& y) {
    return x.read_a == y.read_a && x.read_b == y.read_b &&
           x.shared == y.shared;
  }
  friend bool operator<(const OverlapPair& x, const OverlapPair& y) {
    if (x.read_a != y.read_a) return x.read_a < y.read_a;
    if (x.read_b != y.read_b) return x.read_b < y.read_b;
    return x.shared < y.shared;
  }
};

/// Serial reference: all pairs (i < j) with >= min_shared common k-mers,
/// sorted by (read_a, read_b).
std::vector<OverlapPair> find_overlaps_serial(const CscMat& kmer_matrix,
                                              double min_shared);

/// Distributed version: every rank calls with the same replicated k-mer
/// matrix; A*A^T runs as BatchedSUMMA3D (0 memory = unlimited) and each
/// batch is filtered on arrival. The merged candidate list is allgathered
/// so every rank returns the identical sorted result.
std::vector<OverlapPair> find_overlaps_distributed(
    Grid3D& grid, const CscMat& kmer_matrix, double min_shared,
    Bytes total_memory = 0, const SummaOptions& opts = {});

}  // namespace casp
