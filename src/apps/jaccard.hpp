// Jaccard similarity via SpGEMM (Sec. I: Besta et al. [14] formulate
// dataset similarity as multiplication of a sparse matrix by its
// transpose).
//
// Rows of A are items, columns are features (k-mers, attributes);
// J(i, j) = |F_i ∩ F_j| / |F_i ∪ F_j|. A*A^T yields the intersection
// sizes; row degrees give |F_i|, and |F_i ∪ F_j| = |F_i| + |F_j| - |∩|.
// Like the overlap app, results stream batch by batch.
#pragma once

#include <vector>

#include "apps/overlap.hpp"
#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

struct JaccardPair {
  Index item_a = 0;
  Index item_b = 0;
  double similarity = 0.0;

  friend bool operator<(const JaccardPair& x, const JaccardPair& y) {
    if (x.item_a != y.item_a) return x.item_a < y.item_a;
    return x.item_b < y.item_b;
  }
};

/// Serial reference: all pairs with Jaccard similarity >= min_similarity.
/// Treats A as a 0/1 incidence matrix (values ignored, pattern used).
std::vector<JaccardPair> jaccard_pairs_serial(const CscMat& incidence,
                                              double min_similarity);

/// Distributed version over BatchedSUMMA3D; identical result on all ranks.
std::vector<JaccardPair> jaccard_pairs_distributed(
    Grid3D& grid, const CscMat& incidence, double min_similarity,
    Bytes total_memory = 0, const SummaOptions& opts = {});

}  // namespace casp
