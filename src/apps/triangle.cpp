#include "apps/triangle.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "grid/dist.hpp"
#include "kernels/spgemm.hpp"
#include "sparse/csr_mat.hpp"
#include "summa/batched.hpp"

namespace casp {

namespace {
/// Binary-search membership test in a sorted column.
bool column_contains(const CscMat& m, Index col, Index row) {
  const auto rows = m.col_rowids(col);
  return std::binary_search(rows.begin(), rows.end(), row);
}
}  // namespace

Index count_triangles_serial(const CscMat& adjacency) {
  CASP_CHECK(adjacency.nrows() == adjacency.ncols());
  CscMat lower = lower_triangle(adjacency);
  CscMat upper = upper_triangle(adjacency);
  for (Value& v : lower.vals_mutable()) v = 1.0;
  for (Value& v : upper.vals_mutable()) v = 1.0;
  lower.sort_columns();
  // Masked multiply: only wedge counts on existing edges materialize, so
  // the intermediate never exceeds nnz(L) (the masked-SpGEMM formulation
  // of [3]).
  const CscMat wedges = local_spgemm_masked<PlusTimes>(lower, upper, lower);
  Index triangles = 0;
  for (Value v : wedges.vals()) triangles += static_cast<Index>(v + 0.5);
  return triangles;
}

Index count_triangles_distributed(Grid3D& grid, const CscMat& adjacency,
                                  Bytes total_memory,
                                  const SummaOptions& opts) {
  CASP_CHECK(adjacency.nrows() == adjacency.ncols());
  CscMat lower = lower_triangle(adjacency);
  CscMat upper = upper_triangle(adjacency);
  for (Value& v : lower.vals_mutable()) v = 1.0;
  for (Value& v : upper.vals_mutable()) v = 1.0;
  lower.sort_columns();

  const DistMat3D dl = distribute_a_style(grid, lower);
  const DistMat3D du = distribute_b_style(grid, upper);

  // C = L*U is distributed like L, so the mask lookup is rank-local: batch
  // piece entry (lr, lc) with global column g masks against local L column
  // (g - dl.cols.start).
  Index my_count = 0;
  batched_summa3d<PlusTimes>(
      grid, dl, du, total_memory, opts,
      [&](CscMat&& piece, const BatchInfo& info) {
        for (Index j = 0; j < piece.ncols(); ++j) {
          const Index local_col = info.global_cols.start + j - dl.cols.start;
          const auto rows = piece.col_rowids(j);
          const auto vals = piece.col_vals(j);
          for (std::size_t k = 0; k < rows.size(); ++k) {
            if (column_contains(dl.local, local_col, rows[k]))
              my_count += static_cast<Index>(vals[k] + 0.5);
          }
        }
      },
      /*keep_output=*/false);

  return grid.world().allreduce_sum<Index>(my_count);
}

}  // namespace casp
