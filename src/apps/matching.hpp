// Heavy-connectivity (inner-product) matching via batched A*A^T — the
// hypergraph-coarsening use case of the paper's introduction: "one
// typically finds the number of shared hyperedges between all pairs of
// vertices in order to run a matching algorithm ... Due to memory
// limitations and the higher density of the product, this SpGEMM is done
// in batches in distributed-memory multi-level partitioners such as
// Zoltan [18]."
//
// A is the vertex-by-hyperedge incidence matrix; (A*A^T)(u, v) counts the
// hyperedges shared by u and v. Each batch of the product yields candidate
// pairs that are greedily matched immediately and then discarded — the
// full (dense-ish) connectivity matrix never exists.
#pragma once

#include <vector>

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

struct MatchingResult {
  /// mate[v] = matched partner of v, or -1 if unmatched.
  std::vector<Index> mate;
  Index matched_pairs = 0;
  /// Sum of shared-hyperedge counts over matched pairs (matching weight).
  double total_weight = 0.0;
};

/// Serial reference: greedy matching over all pairs with at least
/// `min_shared` common hyperedges, heaviest pairs first (ties broken by
/// vertex ids). Greedy processing yields a maximal matching: afterwards no
/// two unmatched vertices share >= min_shared hyperedges.
MatchingResult heavy_connectivity_matching_serial(const CscMat& incidence,
                                                  double min_shared);

/// Distributed, memory-constrained version: A*A^T runs as BatchedSUMMA3D;
/// after each batch the candidate pairs are allgathered and every rank
/// applies the identical greedy pass, so the evolving matched set is
/// consistent and each batch's candidates can be discarded. Greedy
/// maximality holds for any batch order. Identical result on every rank.
MatchingResult heavy_connectivity_matching_distributed(
    Grid3D& grid, const CscMat& incidence, double min_shared,
    Bytes total_memory = 0, const SummaOptions& opts = {});

}  // namespace casp
