#include "apps/matching.hpp"

#include <algorithm>

#include "apps/overlap.hpp"
#include "common/error.hpp"
#include "grid/dist.hpp"
#include "summa/batched.hpp"

namespace casp {

namespace {

struct Candidate {
  Index u;
  Index v;
  double shared;
};

/// Heaviest-first greedy order; deterministic tie-breaking.
bool heavier(const Candidate& a, const Candidate& b) {
  if (a.shared != b.shared) return a.shared > b.shared;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

/// Apply one greedy pass over sorted candidates against the shared state.
void greedy_apply(const std::vector<Candidate>& sorted,
                  MatchingResult& result) {
  for (const Candidate& c : sorted) {
    if (result.mate[static_cast<std::size_t>(c.u)] >= 0 ||
        result.mate[static_cast<std::size_t>(c.v)] >= 0)
      continue;
    result.mate[static_cast<std::size_t>(c.u)] = c.v;
    result.mate[static_cast<std::size_t>(c.v)] = c.u;
    ++result.matched_pairs;
    result.total_weight += c.shared;
  }
}

}  // namespace

MatchingResult heavy_connectivity_matching_serial(const CscMat& incidence,
                                                  double min_shared) {
  MatchingResult result;
  result.mate.assign(static_cast<std::size_t>(incidence.nrows()), -1);
  // Reuse the overlap app: (A*A^T)(u, v) >= min_shared candidates.
  const auto pairs = find_overlaps_serial(incidence, min_shared);
  std::vector<Candidate> candidates;
  candidates.reserve(pairs.size());
  for (const OverlapPair& p : pairs)
    candidates.push_back({p.read_a, p.read_b, p.shared});
  std::sort(candidates.begin(), candidates.end(), heavier);
  greedy_apply(candidates, result);
  return result;
}

MatchingResult heavy_connectivity_matching_distributed(
    Grid3D& grid, const CscMat& incidence, double min_shared,
    Bytes total_memory, const SummaOptions& opts) {
  MatchingResult result;
  result.mate.assign(static_cast<std::size_t>(incidence.nrows()), -1);

  const CscMat at = incidence.transpose();
  const DistMat3D da = distribute_a_style(grid, incidence);
  const DistMat3D db = distribute_b_style(grid, at);

  batched_summa3d<PlusTimes>(
      grid, da, db, total_memory, opts,
      [&](CscMat&& piece, const BatchInfo& info) {
        // Local candidates of this batch piece.
        std::vector<Candidate> mine;
        for (Index j = 0; j < piece.ncols(); ++j) {
          const Index global_col = info.global_cols.start + j;
          const auto rows = piece.col_rowids(j);
          const auto vals = piece.col_vals(j);
          for (std::size_t k = 0; k < rows.size(); ++k) {
            const Index global_row = info.global_rows.start + rows[k];
            if (global_row < global_col && vals[k] >= min_shared &&
                result.mate[static_cast<std::size_t>(global_row)] < 0 &&
                result.mate[static_cast<std::size_t>(global_col)] < 0)
              mine.push_back({global_row, global_col, vals[k]});
          }
        }
        // Share this batch's candidates; every rank applies the identical
        // greedy pass, keeping the matched set consistent without a
        // coordinator. The candidates are then discarded.
        std::vector<Candidate> batch_candidates =
            grid.world().allgather_vec<Candidate>(mine);
        std::sort(batch_candidates.begin(), batch_candidates.end(), heavier);
        greedy_apply(batch_candidates, result);
      },
      /*keep_output=*/false);
  return result;
}

}  // namespace casp
