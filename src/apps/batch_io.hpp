// Streaming batched output to disk.
//
// The paper's applications either prune each batch (HipMCL) or persist it
// (sequence-overlap candidate lists, hypergraph matching inputs): "the
// output C[batch] from each batch is pruned or saved to disk by the
// application" (Sec. IV-B). This component is the save-to-disk half: a
// BatchCallback that appends every finished piece to a per-rank file with
// global coordinates, plus a loader that reassembles the full product for
// verification or downstream serial tooling.
#pragma once

#include <string>

#include "summa/batched.hpp"

namespace casp {

/// Returns a callback for batched_summa3d that appends each piece (in
/// global coordinates) to `directory/part-<rank>.txt`. The file is
/// created/truncated on the first batch. One writer per rank; files are
/// independent so no locking is needed.
BatchCallback make_disk_batch_writer(const std::string& directory, int rank);

/// Reassemble everything written into `directory` by any number of ranks
/// and batches. Strict about its input: a missing directory, truncated or
/// corrupt entries, trailing tokens, out-of-range coordinates, non-finite
/// values, and negative or oversized header dimensions (cap 2^48 —
/// overflow-safe index arithmetic) all throw InputError naming the file and
/// line, which vmpi::run classifies as FailureReport kind "input_error".
CscMat load_batch_directory(const std::string& directory);

}  // namespace casp
