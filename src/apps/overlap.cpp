#include "apps/overlap.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "grid/dist.hpp"
#include "kernels/spgemm.hpp"
#include "summa/batched.hpp"

namespace casp {

std::vector<OverlapPair> find_overlaps_serial(const CscMat& kmer_matrix,
                                              double min_shared) {
  const CscMat at = kmer_matrix.transpose();
  const CscMat shared = local_spgemm<PlusTimes>(kmer_matrix, at,
                                                SpGemmKind::kSortedHash);
  std::vector<OverlapPair> pairs;
  for (Index j = 0; j < shared.ncols(); ++j) {
    const auto rows = shared.col_rowids(j);
    const auto vals = shared.col_vals(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] < j && vals[k] >= min_shared)
        pairs.push_back({rows[k], j, vals[k]});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<OverlapPair> find_overlaps_distributed(Grid3D& grid,
                                                   const CscMat& kmer_matrix,
                                                   double min_shared,
                                                   Bytes total_memory,
                                                   const SummaOptions& opts) {
  const CscMat at = kmer_matrix.transpose();
  const DistMat3D da = distribute_a_style(grid, kmer_matrix);
  const DistMat3D db = distribute_b_style(grid, at);

  // Filter each batch piece as it streams out; the full reads-by-reads
  // similarity matrix is never assembled.
  std::vector<OverlapPair> mine;
  batched_summa3d<PlusTimes>(
      grid, da, db, total_memory, opts,
      [&](CscMat&& piece, const BatchInfo& info) {
        for (Index j = 0; j < piece.ncols(); ++j) {
          const Index global_col = info.global_cols.start + j;
          const auto rows = piece.col_rowids(j);
          const auto vals = piece.col_vals(j);
          for (std::size_t k = 0; k < rows.size(); ++k) {
            const Index global_row = info.global_rows.start + rows[k];
            // Keep the strictly-lower half so each pair reports once.
            if (global_row < global_col && vals[k] >= min_shared)
              mine.push_back({global_row, global_col, vals[k]});
          }
        }
      },
      /*keep_output=*/false);

  // Share candidates so every rank returns the full list.
  std::vector<OverlapPair> pairs =
      grid.world().allgather_vec<OverlapPair>(mine);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace casp
