#include "apps/jaccard.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "grid/dist.hpp"
#include "kernels/spgemm.hpp"
#include "summa/batched.hpp"

namespace casp {

namespace {
/// 0/1 copy of a matrix and its per-row nonzero counts.
CscMat binarize(const CscMat& m, std::vector<Index>& row_degree) {
  CscMat out = m;
  for (Value& v : out.vals_mutable()) v = 1.0;
  row_degree.assign(static_cast<std::size_t>(m.nrows()), 0);
  for (Index r : m.rowids()) ++row_degree[static_cast<std::size_t>(r)];
  return out;
}

double jaccard_from_intersection(double intersection, Index deg_a,
                                 Index deg_b) {
  const double uni =
      static_cast<double>(deg_a) + static_cast<double>(deg_b) - intersection;
  return uni <= 0.0 ? 0.0 : intersection / uni;
}
}  // namespace

std::vector<JaccardPair> jaccard_pairs_serial(const CscMat& incidence,
                                              double min_similarity) {
  std::vector<Index> degree;
  const CscMat a = binarize(incidence, degree);
  const CscMat at = a.transpose();
  const CscMat inter = local_spgemm<PlusTimes>(a, at, SpGemmKind::kSortedHash);
  std::vector<JaccardPair> pairs;
  for (Index j = 0; j < inter.ncols(); ++j) {
    const auto rows = inter.col_rowids(j);
    const auto vals = inter.col_vals(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] >= j) continue;
      const double sim = jaccard_from_intersection(
          vals[k], degree[static_cast<std::size_t>(rows[k])],
          degree[static_cast<std::size_t>(j)]);
      if (sim >= min_similarity) pairs.push_back({rows[k], j, sim});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<JaccardPair> jaccard_pairs_distributed(Grid3D& grid,
                                                   const CscMat& incidence,
                                                   double min_similarity,
                                                   Bytes total_memory,
                                                   const SummaOptions& opts) {
  std::vector<Index> degree;  // replicated: O(rows), cheap
  const CscMat a = binarize(incidence, degree);
  const CscMat at = a.transpose();
  const DistMat3D da = distribute_a_style(grid, a);
  const DistMat3D db = distribute_b_style(grid, at);

  std::vector<JaccardPair> mine;
  batched_summa3d<PlusTimes>(
      grid, da, db, total_memory, opts,
      [&](CscMat&& piece, const BatchInfo& info) {
        for (Index j = 0; j < piece.ncols(); ++j) {
          const Index global_col = info.global_cols.start + j;
          const auto rows = piece.col_rowids(j);
          const auto vals = piece.col_vals(j);
          for (std::size_t k = 0; k < rows.size(); ++k) {
            const Index global_row = info.global_rows.start + rows[k];
            if (global_row >= global_col) continue;
            const double sim = jaccard_from_intersection(
                vals[k], degree[static_cast<std::size_t>(global_row)],
                degree[static_cast<std::size_t>(global_col)]);
            if (sim >= min_similarity)
              mine.push_back({global_row, global_col, sim});
          }
        }
      },
      /*keep_output=*/false);

  std::vector<JaccardPair> pairs =
      grid.world().allgather_vec<JaccardPair>(mine);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace casp
