// Triangle counting via SpGEMM (application (b) of Sec. V-B).
//
// For an undirected adjacency matrix A split into strictly-lower L and
// strictly-upper U, (L*U)(i,j) with i > j counts the wedges i-k-j with
// k < j < i; masking by the edges of L counts each triangle {k < j < i}
// exactly once [Azad, Buluc, Gilbert 2015]. The mask is evaluated
// rank-locally: C = L*U is distributed like L (A-style), so every rank owns
// the L block matching its C block.
#pragma once

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

/// Serial reference (exact).
Index count_triangles_serial(const CscMat& adjacency);

/// Distributed count using BatchedSUMMA3D for L*U; every rank calls with
/// the same replicated adjacency and receives the same global count.
/// total_memory as in batched_summa3d (0 = unlimited).
Index count_triangles_distributed(Grid3D& grid, const CscMat& adjacency,
                                  Bytes total_memory = 0,
                                  const SummaOptions& opts = {});

}  // namespace casp
