#include "apps/mcl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/math.hpp"
#include "grid/dist.hpp"
#include "kernels/spgemm.hpp"
#include "obs/recorder.hpp"
#include "sparse/serialize.hpp"
#include "summa/batched.hpp"

namespace casp {

void mcl_normalize_columns(CscMat& m) {
  auto vals = m.vals_mutable();
  for (Index j = 0; j < m.ncols(); ++j) {
    const auto lo = static_cast<std::size_t>(m.colptr()[static_cast<std::size_t>(j)]);
    const auto hi = static_cast<std::size_t>(m.colptr()[static_cast<std::size_t>(j) + 1]);
    Value sum = 0;
    for (std::size_t k = lo; k < hi; ++k) sum += vals[k];
    if (sum > 0)
      for (std::size_t k = lo; k < hi; ++k) vals[k] /= sum;
  }
}

void mcl_inflate(CscMat& m, double exponent) {
  for (Value& v : m.vals_mutable()) v = std::pow(v, exponent);
  mcl_normalize_columns(m);
}

void mcl_prune(CscMat& m, double threshold, Index keep_per_col) {
  // Threshold pass first.
  m.prune([threshold](Index, Index, Value v) { return v >= threshold; });
  if (keep_per_col <= 0) return;
  // Top-k pass: for over-full columns keep the k largest values.
  bool any_overfull = false;
  for (Index j = 0; j < m.ncols(); ++j) {
    if (m.col_nnz(j) > keep_per_col) {
      any_overfull = true;
      break;
    }
  }
  if (!any_overfull) return;
  std::vector<Value> cutoffs(static_cast<std::size_t>(m.ncols()), -1.0);
  std::vector<Value> scratch;
  for (Index j = 0; j < m.ncols(); ++j) {
    if (m.col_nnz(j) <= keep_per_col) continue;
    const auto vals = m.col_vals(j);
    scratch.assign(vals.begin(), vals.end());
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(keep_per_col - 1),
                     scratch.end(), std::greater<Value>());
    cutoffs[static_cast<std::size_t>(j)] =
        scratch[static_cast<std::size_t>(keep_per_col - 1)];
  }
  // Keep entries >= cutoff, breaking ties by keeping the first arrivals
  // until the column is full.
  std::vector<Index> kept(static_cast<std::size_t>(m.ncols()), 0);
  m.prune([&](Index, Index col, Value v) {
    const auto c = static_cast<std::size_t>(col);
    if (cutoffs[c] < 0) return true;
    if (v < cutoffs[c]) return false;
    if (kept[c] >= keep_per_col && v <= cutoffs[c]) return false;
    ++kept[c];
    return true;
  });
}

double mcl_chaos(const CscMat& m) {
  double chaos = 0.0;
  for (Index j = 0; j < m.ncols(); ++j) {
    const auto vals = m.col_vals(j);
    if (vals.empty()) continue;
    Value mx = 0, sumsq = 0;
    for (Value v : vals) {
      mx = std::max(mx, v);
      sumsq += v * v;
    }
    chaos = std::max(chaos, static_cast<double>(mx - sumsq));
  }
  return chaos;
}

namespace {
/// Union-find for the cluster interpretation.
class UnionFind {
 public:
  explicit UnionFind(Index n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), Index{0});
  }
  Index find(Index x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(Index a, Index b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }

 private:
  std::vector<Index> parent_;
};
}  // namespace

MclResult mcl_interpret(const CscMat& m) {
  CASP_CHECK_MSG(m.nrows() == m.ncols(), "mcl: iterate must be square");
  const Index n = m.ncols();
  // Each vertex joins its column's attractor (argmax row); vertices whose
  // columns died join singleton clusters.
  UnionFind uf(n);
  for (Index j = 0; j < n; ++j) {
    const auto rows = m.col_rowids(j);
    const auto vals = m.col_vals(j);
    if (rows.empty()) continue;
    std::size_t best = 0;
    for (std::size_t k = 1; k < vals.size(); ++k)
      if (vals[k] > vals[best]) best = k;
    uf.unite(j, rows[best]);
  }
  MclResult result;
  result.cluster_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<Index> id_of_root(static_cast<std::size_t>(n), -1);
  Index next = 0;
  for (Index v = 0; v < n; ++v) {
    const Index root = uf.find(v);
    if (id_of_root[static_cast<std::size_t>(root)] < 0)
      id_of_root[static_cast<std::size_t>(root)] = next++;
    result.cluster_of[static_cast<std::size_t>(v)] =
        id_of_root[static_cast<std::size_t>(root)];
  }
  result.num_clusters = next;
  return result;
}

namespace {
/// One inflation + pruning pass applied to a column block (works the same
/// on a local batch piece and on a full matrix — pruning is column-local).
void inflate_and_prune(CscMat& m, const MclParams& params) {
  mcl_inflate(m, params.inflation);
  mcl_prune(m, params.prune_threshold, params.keep_per_col);
  mcl_normalize_columns(m);
}
}  // namespace

MclResult mcl_cluster_serial(const CscMat& similarity, const MclParams& params) {
  CASP_CHECK(similarity.nrows() == similarity.ncols());
  CscMat m = similarity;
  mcl_normalize_columns(m);
  MclResult result;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // Expansion: M <- M * M.
    m = local_spgemm<PlusTimes>(m, m, SpGemmKind::kSortedHash);
    inflate_and_prune(m, params);
    MclIterationStats stats;
    stats.batches = 1;
    stats.chaos = mcl_chaos(m);
    stats.nnz_after = m.nnz();
    result.per_iteration.push_back(stats);
    ++result.iterations;
    if (stats.chaos < params.chaos_threshold) break;
  }
  const MclResult interpreted = mcl_interpret(m);
  result.cluster_of = interpreted.cluster_of;
  result.num_clusters = interpreted.num_clusters;
  return result;
}

MclResult mcl_cluster_distributed(Grid3D& grid, const CscMat& similarity,
                                  const MclParams& params, Bytes total_memory,
                                  const SummaOptions& opts) {
  CASP_CHECK(similarity.nrows() == similarity.ncols());
  CscMat m = similarity;
  mcl_normalize_columns(m);
  obs::Recorder& rec = grid.world().recorder();
  MclResult result;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    obs::ScopedTag iter_tag(rec, obs::ScopedTag::Kind::kIteration, iter);
    obs::Span iter_span(rec, "MCL-Iteration");
    const DistMat3D da = distribute_a_style(grid, m);
    const DistMat3D db = distribute_b_style(grid, m);
    // Expansion with batch-wise pruning: each finished batch piece is
    // inflated/pruned immediately, so the unpruned square never exists.
    //
    // Inflation and pruning are column-global, but a batch piece holds only
    // this rank's *row slice* of each column (C is A-style distributed, so
    // a global column spans the q ranks of the process column). HipMCL
    // performs the column-wise reductions along process columns; here the
    // batch piece is exchanged within col_comm so every member sees the
    // full columns of the batch, prunes them, and keeps its own row slice.
    // Memory stays bounded by the batch, never the whole square.
    std::vector<CscMat> pruned_pieces;
    Index batches = 1;
    const Index nrows = m.nrows();
    const Index q = grid.q();
    batched_summa3d<PlusTimes>(
        grid, da, db, total_memory, opts,
        [&](CscMat&& piece, const BatchInfo& info) {
          batches = info.num_batches;
          // Assemble full columns across the process column. The gathered
          // payloads are read in place (unpack_csc_view): every member of
          // the process column shares one broadcast concatenation buffer.
          vmpi::Comm& col_comm = grid.col_comm();
          const auto buffers =
              col_comm.allgather_payload(pack_csc_payload(piece));
          TripleMat full_triples(nrows, piece.ncols());
          for (int src = 0; src < col_comm.size(); ++src) {
            const CscView part =
                unpack_csc_view(buffers[static_cast<std::size_t>(src)]);
            const Index row_base = part_low(src, q, nrows);
            for (Index j = 0; j < part.ncols(); ++j) {
              const auto rows = part.col_rowids(j);
              const auto vals = part.col_vals(j);
              for (std::size_t k = 0; k < rows.size(); ++k)
                full_triples.push_back(rows[k] + row_base, j, vals[k]);
            }
          }
          CscMat full = CscMat::from_triples(std::move(full_triples));
          inflate_and_prune(full, params);
          // Keep my row slice of the pruned batch.
          CscMat my_slice = extract_block(
              full, info.global_rows.start,
              info.global_rows.start + info.global_rows.count, 0, full.ncols());
          pruned_pieces.push_back(std::move(my_slice));
        },
        /*keep_output=*/false);
    DistMat3D pruned;
    pruned.global_rows = m.nrows();
    pruned.global_cols = m.ncols();
    pruned.rows = a_style_row_range(grid, m.nrows());
    pruned.cols = a_style_col_range(grid, m.ncols());
    pruned.local = CscMat::concat_cols(pruned_pieces);
    // Re-replicate for the next iteration (and to evaluate global chaos).
    m = gather_dist(grid, pruned);
    // Batch pieces were normalized per piece; the global iterate is
    // column-stochastic already since pruning/normalization is column-local
    // and every global column lives in exactly one piece.
    MclIterationStats stats;
    stats.batches = batches;
    stats.chaos = mcl_chaos(m);
    stats.nnz_after = m.nnz();
    result.per_iteration.push_back(stats);
    ++result.iterations;
    rec.set_counter("mcl.iterations", result.iterations);
    rec.set_counter("mcl.nnz_after", static_cast<std::int64_t>(stats.nnz_after));
    rec.sample("mcl.nnz_after", static_cast<std::int64_t>(stats.nnz_after));
    if (stats.chaos < params.chaos_threshold) break;
  }
  const MclResult interpreted = mcl_interpret(m);
  result.cluster_of = interpreted.cluster_of;
  result.num_clusters = interpreted.num_clusters;
  rec.set_counter("mcl.num_clusters", interpreted.num_clusters);
  return result;
}

}  // namespace casp
