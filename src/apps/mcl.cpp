#include "apps/mcl.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <type_traits>

#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "grid/dist.hpp"
#include "kernels/spgemm.hpp"
#include "obs/recorder.hpp"
#include "sparse/serialize.hpp"
#include "summa/batched.hpp"
#include "vmpi/traffic.hpp"

namespace casp {

void mcl_normalize_columns(CscMat& m) {
  auto vals = m.vals_mutable();
  for (Index j = 0; j < m.ncols(); ++j) {
    const auto lo = static_cast<std::size_t>(m.colptr()[static_cast<std::size_t>(j)]);
    const auto hi = static_cast<std::size_t>(m.colptr()[static_cast<std::size_t>(j) + 1]);
    Value sum = 0;
    for (std::size_t k = lo; k < hi; ++k) sum += vals[k];
    if (sum > 0)
      for (std::size_t k = lo; k < hi; ++k) vals[k] /= sum;
  }
}

void mcl_inflate(CscMat& m, double exponent) {
  for (Value& v : m.vals_mutable()) v = std::pow(v, exponent);
  mcl_normalize_columns(m);
}

void mcl_prune(CscMat& m, double threshold, Index keep_per_col) {
  // Threshold pass first.
  m.prune([threshold](Index, Index, Value v) { return v >= threshold; });
  if (keep_per_col <= 0) return;
  // Top-k pass: for over-full columns keep the k largest values.
  bool any_overfull = false;
  for (Index j = 0; j < m.ncols(); ++j) {
    if (m.col_nnz(j) > keep_per_col) {
      any_overfull = true;
      break;
    }
  }
  if (!any_overfull) return;
  std::vector<Value> cutoffs(static_cast<std::size_t>(m.ncols()), -1.0);
  std::vector<Value> scratch;
  for (Index j = 0; j < m.ncols(); ++j) {
    if (m.col_nnz(j) <= keep_per_col) continue;
    const auto vals = m.col_vals(j);
    scratch.assign(vals.begin(), vals.end());
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(keep_per_col - 1),
                     scratch.end(), std::greater<Value>());
    cutoffs[static_cast<std::size_t>(j)] =
        scratch[static_cast<std::size_t>(keep_per_col - 1)];
  }
  // Keep entries >= cutoff, breaking ties by keeping the first arrivals
  // until the column is full.
  std::vector<Index> kept(static_cast<std::size_t>(m.ncols()), 0);
  m.prune([&](Index, Index col, Value v) {
    const auto c = static_cast<std::size_t>(col);
    if (cutoffs[c] < 0) return true;
    if (v < cutoffs[c]) return false;
    if (kept[c] >= keep_per_col && v <= cutoffs[c]) return false;
    ++kept[c];
    return true;
  });
}

double mcl_chaos(const CscMat& m) {
  double chaos = 0.0;
  for (Index j = 0; j < m.ncols(); ++j) {
    const auto vals = m.col_vals(j);
    if (vals.empty()) continue;
    Value mx = 0, sumsq = 0;
    for (Value v : vals) {
      mx = std::max(mx, v);
      sumsq += v * v;
    }
    chaos = std::max(chaos, static_cast<double>(mx - sumsq));
  }
  return chaos;
}

namespace {
/// Union-find for the cluster interpretation.
class UnionFind {
 public:
  explicit UnionFind(Index n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), Index{0});
  }
  Index find(Index x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(Index a, Index b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }

 private:
  std::vector<Index> parent_;
};
}  // namespace

MclResult mcl_interpret(const CscMat& m) {
  CASP_CHECK_MSG(m.nrows() == m.ncols(), "mcl: iterate must be square");
  const Index n = m.ncols();
  // Each vertex joins its column's attractor (argmax row); vertices whose
  // columns died join singleton clusters.
  UnionFind uf(n);
  for (Index j = 0; j < n; ++j) {
    const auto rows = m.col_rowids(j);
    const auto vals = m.col_vals(j);
    if (rows.empty()) continue;
    std::size_t best = 0;
    for (std::size_t k = 1; k < vals.size(); ++k)
      if (vals[k] > vals[best]) best = k;
    uf.unite(j, rows[best]);
  }
  MclResult result;
  result.cluster_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<Index> id_of_root(static_cast<std::size_t>(n), -1);
  Index next = 0;
  for (Index v = 0; v < n; ++v) {
    const Index root = uf.find(v);
    if (id_of_root[static_cast<std::size_t>(root)] < 0)
      id_of_root[static_cast<std::size_t>(root)] = next++;
    result.cluster_of[static_cast<std::size_t>(v)] =
        id_of_root[static_cast<std::size_t>(root)];
  }
  result.num_clusters = next;
  return result;
}

namespace {
/// One inflation + pruning pass applied to a column block (works the same
/// on a local batch piece and on a full matrix — pruning is column-local).
void inflate_and_prune(CscMat& m, const MclParams& params) {
  mcl_inflate(m, params.inflation);
  mcl_prune(m, params.prune_threshold, params.keep_per_col);
  mcl_normalize_columns(m);
}

constexpr const char* kMclScope = "mcl";
static_assert(std::is_trivially_copyable_v<MclIterationStats>);

/// Iteration-boundary MCL checkpoint: the re-replicated iterate after
/// `next_iter`-1 iterations, the per-iteration stats so far, and whether
/// the chaos test already converged. Everything else (prune thresholds,
/// inflation) is part of the job identity, not the state.
ckpt::Snapshot make_mcl_snapshot(int next_iter, bool converged,
                                 const CscMat& m, const MclResult& result) {
  ckpt::Snapshot snap;
  snap.set_u64("next_iter", static_cast<std::uint64_t>(next_iter));
  snap.set_u64("converged", converged ? 1 : 0);
  snap.set_matrix("m", m);
  snap.set_array("stats", result.per_iteration);
  return snap;
}

/// Resume consensus across ranks. A crash is not a barrier, so ranks may
/// hold different newest generations; unlike the SUMMA batch snapshots, an
/// MCL snapshot is not prefix-truncatable (only the latest iterate is
/// kept), so the agreed point must be an iteration *every* rank has. Each
/// rank publishes the next_iter of its (at most two) valid generations plus
/// the always-available cold start 0; the verdict is the largest value
/// present in every rank's window — deterministic from the gathered array,
/// so every rank computes the same answer. Runs in phase "Ckpt-Resume".
std::int64_t mcl_resume_consensus(
    vmpi::Comm& world, const std::vector<ckpt::LoadedSnapshot>& loaded) {
  constexpr std::size_t kWindow = 3;
  std::vector<std::int64_t> mine(kWindow, -1);
  for (std::size_t i = 0; i < loaded.size() && i < kWindow - 1; ++i)
    mine[i] = static_cast<std::int64_t>(loaded[i].snap.u64("next_iter"));
  mine[kWindow - 1] = 0;
  vmpi::ScopedPhase resume_phase(world.traffic(), steps::kCkptResume);
  const std::vector<std::int64_t> all = world.allgather_vec<std::int64_t>(mine);
  CASP_CHECK(all.size() == kWindow * static_cast<std::size_t>(world.size()));
  std::int64_t best = 0;
  for (const std::int64_t cand : mine) {
    if (cand <= best) continue;
    bool everywhere = true;
    for (int r = 0; r < world.size() && everywhere; ++r) {
      bool found = false;
      for (std::size_t s = 0; s < kWindow; ++s)
        found = found ||
                all[static_cast<std::size_t>(r) * kWindow + s] == cand;
      everywhere = found;
    }
    if (everywhere) best = cand;
  }
  return best;
}
}  // namespace

MclResult mcl_cluster_serial(const CscMat& similarity, const MclParams& params) {
  CASP_CHECK(similarity.nrows() == similarity.ncols());
  CscMat m = similarity;
  mcl_normalize_columns(m);
  MclResult result;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // Expansion: M <- M * M.
    m = local_spgemm<PlusTimes>(m, m, SpGemmKind::kSortedHash);
    inflate_and_prune(m, params);
    MclIterationStats stats;
    stats.batches = 1;
    stats.chaos = mcl_chaos(m);
    stats.nnz_after = m.nnz();
    result.per_iteration.push_back(stats);
    ++result.iterations;
    if (stats.chaos < params.chaos_threshold) break;
  }
  const MclResult interpreted = mcl_interpret(m);
  result.cluster_of = interpreted.cluster_of;
  result.num_clusters = interpreted.num_clusters;
  return result;
}

MclResult mcl_cluster_distributed(Grid3D& grid, const CscMat& similarity,
                                  const MclParams& params, Bytes total_memory,
                                  const SummaOptions& opts) {
  CASP_CHECK(similarity.nrows() == similarity.ncols());
  CscMat m = similarity;
  mcl_normalize_columns(m);
  obs::Recorder& rec = grid.world().recorder();
  MclResult result;

  // Iteration-boundary checkpointing (opts.ckpt): resume from the newest
  // iteration every rank holds, replaying nothing — the snapshot carries
  // the full re-replicated iterate, and all later state is deterministic.
  ckpt::Checkpointer* ck = opts.ckpt;
  const bool ckpt_on = ck != nullptr && ck->enabled();
  std::string ckpt_job;
  int start_iter = 0;
  bool restored_converged = false;
  if (ckpt_on) {
    std::ostringstream id;
    id << "mcl|n=" << similarity.ncols() << "|nnz0=" << similarity.nnz()
       << "|inflation=" << params.inflation
       << "|prune=" << params.prune_threshold
       << "|keep=" << params.keep_per_col
       << "|maxiter=" << params.max_iterations
       << "|chaos=" << params.chaos_threshold
       << "|tag=" << opts.ckpt_job_tag;
    ckpt_job = id.str();
    const auto loaded = ck->load_all(kMclScope, ckpt_job);
    const std::int64_t agreed = mcl_resume_consensus(grid.world(), loaded);
    if (agreed > 0) {
      const ckpt::LoadedSnapshot* chosen = nullptr;
      for (const ckpt::LoadedSnapshot& cand : loaded) {
        if (static_cast<std::int64_t>(cand.snap.u64("next_iter")) == agreed) {
          chosen = &cand;
          break;
        }
      }
      CASP_CHECK_MSG(chosen != nullptr,
                     "mcl resume consensus chose an iteration this rank "
                     "does not hold");
      m = chosen->snap.matrix("m");
      result.per_iteration =
          chosen->snap.array<MclIterationStats>("stats");
      result.iterations = static_cast<int>(agreed);
      start_iter = static_cast<int>(agreed);
      restored_converged = chosen->snap.u64("converged") != 0;
      rec.set_counter("mcl.iterations", result.iterations);
      ck->note_resume(chosen->generation);
    }
  }

  for (int iter = start_iter;
       iter < params.max_iterations && !restored_converged; ++iter) {
    obs::ScopedTag iter_tag(rec, obs::ScopedTag::Kind::kIteration, iter);
    obs::Span iter_span(rec, "MCL-Iteration");
    // Nested SUMMA-level checkpoints are scoped to this iteration via the
    // job tag, so a crash mid-expansion resumes at the batch boundary and
    // a snapshot from a different iteration can never leak in.
    SummaOptions iter_opts = opts;
    if (ckpt_on)
      iter_opts.ckpt_job_tag =
          opts.ckpt_job_tag + "|mcl-iter-" + std::to_string(iter);
    const DistMat3D da = distribute_a_style(grid, m);
    const DistMat3D db = distribute_b_style(grid, m);
    // Expansion with batch-wise pruning: each finished batch piece is
    // inflated/pruned immediately, so the unpruned square never exists.
    //
    // Inflation and pruning are column-global, but a batch piece holds only
    // this rank's *row slice* of each column (C is A-style distributed, so
    // a global column spans the q ranks of the process column). HipMCL
    // performs the column-wise reductions along process columns; here the
    // batch piece is exchanged within col_comm so every member sees the
    // full columns of the batch, prunes them, and keeps its own row slice.
    // Memory stays bounded by the batch, never the whole square.
    std::vector<CscMat> pruned_pieces;
    Index batches = 1;
    const Index nrows = m.nrows();
    const Index q = grid.q();
    batched_summa3d<PlusTimes>(
        grid, da, db, total_memory, iter_opts,
        [&](CscMat&& piece, const BatchInfo& info) {
          batches = info.num_batches;
          // Assemble full columns across the process column. The gathered
          // payloads are read in place (unpack_csc_view): every member of
          // the process column shares one broadcast concatenation buffer.
          vmpi::Comm& col_comm = grid.col_comm();
          const auto buffers =
              col_comm.allgather_payload(pack_csc_payload(piece));
          TripleMat full_triples(nrows, piece.ncols());
          for (int src = 0; src < col_comm.size(); ++src) {
            const CscView part =
                unpack_csc_view(buffers[static_cast<std::size_t>(src)]);
            const Index row_base = part_low(src, q, nrows);
            for (Index j = 0; j < part.ncols(); ++j) {
              const auto rows = part.col_rowids(j);
              const auto vals = part.col_vals(j);
              for (std::size_t k = 0; k < rows.size(); ++k)
                full_triples.push_back(rows[k] + row_base, j, vals[k]);
            }
          }
          CscMat full = CscMat::from_triples(std::move(full_triples));
          inflate_and_prune(full, params);
          // Keep my row slice of the pruned batch.
          CscMat my_slice = extract_block(
              full, info.global_rows.start,
              info.global_rows.start + info.global_rows.count, 0, full.ncols());
          pruned_pieces.push_back(std::move(my_slice));
        },
        /*keep_output=*/false);
    DistMat3D pruned;
    pruned.global_rows = m.nrows();
    pruned.global_cols = m.ncols();
    pruned.rows = a_style_row_range(grid, m.nrows());
    pruned.cols = a_style_col_range(grid, m.ncols());
    pruned.local = CscMat::concat_cols(pruned_pieces);
    // Re-replicate for the next iteration (and to evaluate global chaos).
    m = gather_dist(grid, pruned);
    // Batch pieces were normalized per piece; the global iterate is
    // column-stochastic already since pruning/normalization is column-local
    // and every global column lives in exactly one piece.
    MclIterationStats stats;
    stats.batches = batches;
    stats.chaos = mcl_chaos(m);
    stats.nnz_after = m.nnz();
    result.per_iteration.push_back(stats);
    ++result.iterations;
    rec.set_counter("mcl.iterations", result.iterations);
    rec.set_counter("mcl.nnz_after", static_cast<std::int64_t>(stats.nnz_after));
    rec.sample("mcl.nnz_after", static_cast<std::int64_t>(stats.nnz_after));
    const bool converged = stats.chaos < params.chaos_threshold;
    if (ckpt_on && (ck->due(static_cast<std::uint64_t>(iter) + 1) || converged))
      ck->save(kMclScope, ckpt_job,
               make_mcl_snapshot(iter + 1, converged, m, result));
    if (converged) break;
  }
  const MclResult interpreted = mcl_interpret(m);
  result.cluster_of = interpreted.cluster_of;
  result.num_clusters = interpreted.num_clusters;
  rec.set_counter("mcl.num_clusters", interpreted.num_clusters);
  return result;
}

}  // namespace casp
