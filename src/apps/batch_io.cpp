#include "apps/batch_io.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace casp {

namespace {
std::string part_path(const std::string& directory, int rank) {
  std::ostringstream os;
  os << directory << "/part-" << rank << ".txt";
  return os.str();
}

/// Dimension cap for ingested headers. Far above any real workload, far
/// below the point where nrows*ncols-style arithmetic (or a hostile
/// header's implied allocation) can overflow Index: 2^48 rows times
/// kBytesPerNonzero still fits in 63 bits with room to spare.
constexpr Index kMaxBatchDim = Index{1} << 48;

[[noreturn]] void bad_input(const std::string& path, std::size_t line_no,
                            const std::string& detail) {
  std::ostringstream os;
  os << "batch input " << path << ":" << line_no << ": " << detail;
  throw InputError(os.str());
}
}  // namespace

BatchCallback make_disk_batch_writer(const std::string& directory, int rank) {
  std::filesystem::create_directories(directory);
  // Shared state survives across callback invocations (one per batch).
  struct WriterState {
    std::ofstream out;
    bool header_written = false;
  };
  auto state = std::make_shared<WriterState>();
  const std::string path = part_path(directory, rank);
  return [state, path](CscMat&& piece, const BatchInfo& info) {
    if (!state->header_written) {
      state->out.open(path, std::ios::trunc);
      CASP_CHECK_MSG(state->out.good(), "cannot open " << path);
      // Global shape header (the pieces alone cannot size empty borders).
      state->out << "casp-batch " << info.global_nrows << ' '
                 << info.global_ncols << "\n";
      state->header_written = true;
    }
    state->out.precision(17);
    for (Index j = 0; j < piece.ncols(); ++j) {
      const auto rows = piece.col_rowids(j);
      const auto vals = piece.col_vals(j);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        state->out << rows[k] + info.global_rows.start << ' '
                   << j + info.global_cols.start << ' ' << vals[k] << '\n';
      }
    }
    CASP_CHECK_MSG(state->out.good(), "write failed on " << path);
  };
}

CscMat load_batch_directory(const std::string& directory) {
  TripleMat triples(0, 0);
  Index nrows = -1, ncols = -1;
  bool found = false;
  for (int rank = 0;; ++rank) {
    const std::string path = part_path(directory, rank);
    std::ifstream in(path);
    if (!in) break;
    found = true;
    // The writer puts the shape header first in every part; entries before
    // it (or a part that is all entries) mean the file is truncated at the
    // front or not a batch part at all.
    bool file_has_header = false;
    std::string line;
    std::string extra;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      if (line.rfind("casp-batch", 0) == 0) {
        std::istringstream header(line.substr(10));
        Index r = 0, c = 0;
        if (!(header >> r >> c))
          bad_input(path, line_no, "unparsable shape header '" + line + "'");
        if (header >> extra)
          bad_input(path, line_no,
                    "trailing token '" + extra + "' after shape header");
        if (r < 0 || c < 0)
          bad_input(path, line_no, "negative dimension in shape header");
        if (r > kMaxBatchDim || c > kMaxBatchDim)
          bad_input(path, line_no,
                    "oversized dimension in shape header (cap 2^48)");
        if (nrows >= 0 && (nrows != r || ncols != c))
          bad_input(path, line_no,
                    "parts disagree on global shape in " + directory);
        nrows = r;
        ncols = c;
        file_has_header = true;
        continue;
      }
      if (!file_has_header)
        bad_input(path, line_no,
                  "entry before shape header (truncated or foreign file)");
      std::istringstream entry(line);
      Index r = 0, c = 0;
      std::string vtok;
      if (!(entry >> r >> c >> vtok))
        bad_input(path, line_no, "corrupt entry '" + line + "'");
      if (entry >> extra)
        bad_input(path, line_no,
                  "trailing token '" + extra + "' after entry");
      // strtod instead of istream for the value: istream's num_get refuses
      // "nan"/"inf" outright, which would misreport a non-finite value as
      // a generic parse failure.
      char* vend = nullptr;
      const Value v = std::strtod(vtok.c_str(), &vend);
      if (vend == vtok.c_str() || *vend != '\0')
        bad_input(path, line_no, "corrupt entry '" + line + "'");
      if (r < 0 || r >= nrows || c < 0 || c >= ncols) {
        std::ostringstream os;
        os << "entry (" << r << ", " << c << ") outside the declared "
           << nrows << "x" << ncols << " shape";
        bad_input(path, line_no, os.str());
      }
      if (!std::isfinite(v))
        bad_input(path, line_no, "non-finite value '" + line + "'");
      triples.push_back(r, c, v);
    }
  }
  if (!found || nrows < 0)
    throw InputError("no batch parts found in " + directory);
  TripleMat sized(nrows, ncols, std::move(triples.entries()));
  return CscMat::from_triples(std::move(sized));
}

}  // namespace casp
