#include "apps/batch_io.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace casp {

namespace {
std::string part_path(const std::string& directory, int rank) {
  std::ostringstream os;
  os << directory << "/part-" << rank << ".txt";
  return os.str();
}
}  // namespace

BatchCallback make_disk_batch_writer(const std::string& directory, int rank) {
  std::filesystem::create_directories(directory);
  // Shared state survives across callback invocations (one per batch).
  struct WriterState {
    std::ofstream out;
    bool header_written = false;
  };
  auto state = std::make_shared<WriterState>();
  const std::string path = part_path(directory, rank);
  return [state, path](CscMat&& piece, const BatchInfo& info) {
    if (!state->header_written) {
      state->out.open(path, std::ios::trunc);
      CASP_CHECK_MSG(state->out.good(), "cannot open " << path);
      // Global shape header (the pieces alone cannot size empty borders).
      state->out << "casp-batch " << info.global_nrows << ' '
                 << info.global_ncols << "\n";
      state->header_written = true;
    }
    state->out.precision(17);
    for (Index j = 0; j < piece.ncols(); ++j) {
      const auto rows = piece.col_rowids(j);
      const auto vals = piece.col_vals(j);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        state->out << rows[k] + info.global_rows.start << ' '
                   << j + info.global_cols.start << ' ' << vals[k] << '\n';
      }
    }
    CASP_CHECK_MSG(state->out.good(), "write failed on " << path);
  };
}

CscMat load_batch_directory(const std::string& directory) {
  TripleMat triples(0, 0);
  Index nrows = -1, ncols = -1;
  bool found = false;
  for (int rank = 0;; ++rank) {
    const std::string path = part_path(directory, rank);
    std::ifstream in(path);
    if (!in) break;
    found = true;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("casp-batch", 0) == 0) {
        std::istringstream header(line.substr(10));
        Index r = 0, c = 0;
        if (!(header >> r >> c))
          throw InvalidArgument("bad batch header in " + path);
        if (nrows >= 0 && (nrows != r || ncols != c))
          throw InvalidArgument("batch parts disagree on global shape in " +
                                directory);
        nrows = r;
        ncols = c;
        continue;
      }
      std::istringstream entry(line);
      Index r = 0, c = 0;
      Value v = 0;
      if (!(entry >> r >> c >> v))
        throw InvalidArgument("batch part corrupt: " + path);
      triples.push_back(r, c, v);
    }
  }
  if (!found || nrows < 0)
    throw InvalidArgument("no batch parts found in " + directory);
  TripleMat sized(nrows, ncols, std::move(triples.entries()));
  return CscMat::from_triples(std::move(sized));
}

}  // namespace casp
