// HipMCL-style Markov clustering (Sec. V-C) on BatchedSUMMA3D.
//
// MCL iterates expansion (matrix squaring — the SpGEMM that overruns
// memory at scale), inflation (elementwise power + column normalization),
// and pruning (threshold + per-column top-k). HipMCL's crucial property is
// that pruning is column-local, so each batch of the squared matrix can be
// pruned the moment it is produced and the full dense-ish A^2 never exists
// — exactly the BatchedSUMMA3D streaming contract.
#pragma once

#include <vector>

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

struct MclParams {
  /// Inflation exponent (van Dongen's r; HipMCL default 2).
  double inflation = 2.0;
  /// Entries below this are dropped after inflation.
  double prune_threshold = 1e-4;
  /// Keep at most this many entries per column (HipMCL's top-k pruning).
  Index keep_per_col = 64;
  int max_iterations = 60;
  /// Converged when the chaos measure (max over columns of
  /// max(col) - sum(col^2) on column-stochastic M) drops below this.
  double chaos_threshold = 1e-3;
};

struct MclIterationStats {
  Index batches = 1;       ///< batch count the symbolic step chose
  double chaos = 0.0;      ///< post-iteration chaos
  Index nnz_after = 0;     ///< nnz of the pruned iterate
};

struct MclResult {
  /// cluster_of[v] = cluster id of vertex v (ids are arbitrary but dense).
  std::vector<Index> cluster_of;
  Index num_clusters = 0;
  int iterations = 0;
  std::vector<MclIterationStats> per_iteration;
};

/// Serial reference implementation (for tests and as the spec).
MclResult mcl_cluster_serial(const CscMat& similarity, const MclParams& params);

/// Distributed implementation: every rank calls with the same replicated
/// similarity matrix; expansion runs as BatchedSUMMA3D with batch-wise
/// pruning under the given aggregate memory budget (0 = unlimited). The
/// iterate is re-replicated between iterations (gather_dist) — acceptable
/// at library-test scale and keeps the example honest about where
/// communication happens. Returns identical results on every rank.
MclResult mcl_cluster_distributed(Grid3D& grid, const CscMat& similarity,
                                  const MclParams& params,
                                  Bytes total_memory = 0,
                                  const SummaOptions& opts = {});

/// Column-stochastic normalization, in place. Exposed for tests.
void mcl_normalize_columns(CscMat& m);
/// Inflation: elementwise power then renormalize. Exposed for tests.
void mcl_inflate(CscMat& m, double exponent);
/// Threshold + top-k pruning. Exposed for tests.
void mcl_prune(CscMat& m, double threshold, Index keep_per_col);
/// Chaos of a column-stochastic matrix. Exposed for tests.
double mcl_chaos(const CscMat& m);
/// Interpret a converged iterate as clusters. Exposed for tests.
MclResult mcl_interpret(const CscMat& m);

}  // namespace casp
