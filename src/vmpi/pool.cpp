#include "vmpi/pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "vmpi/job_exec.hpp"

namespace casp::vmpi {

namespace {

constexpr int kHandshakeTag = 7101;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

/// The probation payload both sides regenerate independently: a splitmix64
/// stream keyed by (seed, rank, attempt), so every probation attempt of
/// every rank exchanges a distinct, reproducible buffer.
std::vector<std::uint64_t> handshake_payload(std::uint64_t seed, int rank,
                                             int attempt, int words) {
  std::vector<std::uint64_t> payload(static_cast<std::size_t>(words));
  std::uint64_t x = seed ^ splitmix64(static_cast<std::uint64_t>(rank) * 31 +
                                      static_cast<std::uint64_t>(attempt));
  for (std::uint64_t& w : payload) {
    x = splitmix64(x);
    w = x;
  }
  return payload;
}

}  // namespace

const char* to_string(RankHealth health) {
  switch (health) {
    case RankHealth::kAlive: return "alive";
    case RankHealth::kSuspect: return "suspect";
    case RankHealth::kDead: return "dead";
    case RankHealth::kProbation: return "probation";
    case RankHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

RankPool::RankPool(int size) : size_(size) {
  CASP_CHECK_MSG(size >= 1, "rank pool needs at least one rank");
  health_.assign(static_cast<std::size_t>(size), RankHealth::kAlive);
  probation_failures_.assign(static_cast<std::size_t>(size), 0);
  slots_.resize(static_cast<std::size_t>(size));
  workers_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    workers_.emplace_back([this, r]() { worker_main(r); });
}

bool RankPool::transition(int rank, RankHealth next) {
  RankHealth& cur = health_[static_cast<std::size_t>(rank)];
  bool legal = false;
  switch (cur) {
    case RankHealth::kAlive:
      legal = next == RankHealth::kSuspect || next == RankHealth::kDead;
      break;
    case RankHealth::kSuspect:
      legal = next == RankHealth::kAlive || next == RankHealth::kDead;
      break;
    case RankHealth::kDead:
      legal = next == RankHealth::kProbation;
      break;
    case RankHealth::kProbation:
      legal = next == RankHealth::kAlive || next == RankHealth::kDead ||
              next == RankHealth::kProbation ||
              next == RankHealth::kQuarantined;
      break;
    case RankHealth::kQuarantined:
      legal = false;  // terminal: a quarantined rank never re-enters
      break;
  }
  if (!legal) return false;
  if (cur != next) cur = next;
  return true;
}

RankHealth RankPool::health(int rank) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (rank < 0 || rank >= size_) return RankHealth::kDead;
  return health_[static_cast<std::size_t>(rank)];
}

void RankPool::mark_dead(int rank) {
  if (rank < 0 || rank >= size_) return;
  std::lock_guard<std::mutex> lock(health_mutex_);
  // Dead is sticky and quarantine is terminal: transition() refuses the
  // kDead -> kDead and kQuarantined -> kDead edges, which is exactly the
  // idempotence this call needs.
  transition(rank, RankHealth::kDead);
}

void RankPool::mark_suspect(int rank) {
  if (rank < 0 || rank >= size_) return;
  std::lock_guard<std::mutex> lock(health_mutex_);
  // Only kAlive -> kSuspect is legal: a suspect verdict never resurrects a
  // dead, probationary or quarantined rank.
  transition(rank, RankHealth::kSuspect);
}

void RankPool::clear_suspects() {
  std::lock_guard<std::mutex> lock(health_mutex_);
  for (int r = 0; r < size_; ++r)
    if (health_[static_cast<std::size_t>(r)] == RankHealth::kSuspect)
      transition(r, RankHealth::kAlive);
}

std::vector<int> RankPool::alive_ranks() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  std::vector<int> alive;
  for (int r = 0; r < size_; ++r) {
    const RankHealth h = health_[static_cast<std::size_t>(r)];
    if (h == RankHealth::kAlive || h == RankHealth::kSuspect)
      alive.push_back(r);
  }
  return alive;
}

int RankPool::alive_count() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  int n = 0;
  for (const RankHealth& h : health_)
    if (h == RankHealth::kAlive || h == RankHealth::kSuspect) ++n;
  return n;
}

bool RankPool::request_rejoin(int rank) {
  if (rank < 0 || rank >= size_) return false;
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_[static_cast<std::size_t>(rank)] != RankHealth::kDead)
    return false;
  return transition(rank, RankHealth::kProbation);
}

std::vector<int> RankPool::probation_ranks() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  std::vector<int> out;
  for (int r = 0; r < size_; ++r)
    if (health_[static_cast<std::size_t>(r)] == RankHealth::kProbation)
      out.push_back(r);
  return out;
}

std::vector<int> RankPool::quarantined_ranks() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  std::vector<int> out;
  for (int r = 0; r < size_; ++r)
    if (health_[static_cast<std::size_t>(r)] == RankHealth::kQuarantined)
      out.push_back(r);
  return out;
}

int RankPool::probation_failures(int rank) const {
  if (rank < 0 || rank >= size_) return 0;
  std::lock_guard<std::mutex> lock(health_mutex_);
  return probation_failures_[static_cast<std::size_t>(rank)];
}

std::vector<int> RankPool::admit_probationers(
    const MembershipOptions& options) {
  std::vector<int> admitted;
  for (const int candidate : probation_ranks()) {
    // Verifier: the lowest alive rank whose dispatch slot is idle (a busy
    // rank is mid-job on another split and must not be borrowed). The
    // candidate's own slot is idle by construction — probationary ranks are
    // never scheduled.
    int verifier = -1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const int r : alive_ranks()) {
        if (slots_[static_cast<std::size_t>(r)].ticket == nullptr) {
          verifier = r;
          break;
        }
      }
    }
    if (verifier < 0) continue;  // nobody free to vouch; retry next round

    const int attempt = probation_failures(candidate);
    const bool corrupt =
        options.corrupt && options.corrupt(candidate, attempt);
    const std::uint64_t seed = options.handshake_seed;
    const int words = options.handshake_words;
    auto passed = std::make_shared<bool>(false);
    // 2-rank handshake job. Pool members must be ascending, so the
    // candidate's job-world rank depends on which side of the verifier it
    // sits; roles are keyed by local rank, not by a fixed slot. The
    // candidate echoes the seeded payload plus its FNV-1a64 checksum; the
    // verifier regenerates the stream independently and compares both.
    const int cand_local = candidate < verifier ? 0 : 1;
    const int ver_local = 1 - cand_local;
    const auto body = [candidate, attempt, corrupt, seed, words, passed,
                       cand_local, ver_local](Comm& comm) {
      if (comm.rank() == cand_local) {
        std::vector<std::uint64_t> payload =
            handshake_payload(seed, candidate, attempt, words);
        if (corrupt && !payload.empty()) payload[0] ^= 1ULL;
        const std::uint64_t checksum = fnv1a64(payload);
        comm.send_vec<std::uint64_t>(ver_local, kHandshakeTag, payload);
        comm.send_value<std::uint64_t>(ver_local, kHandshakeTag + 1,
                                       checksum);
        (void)comm.recv_value<int>(ver_local, kHandshakeTag + 2);
      } else {
        const std::vector<std::uint64_t> echoed =
            comm.recv_vec<std::uint64_t>(cand_local, kHandshakeTag);
        const std::uint64_t checksum =
            comm.recv_value<std::uint64_t>(cand_local, kHandshakeTag + 1);
        const std::vector<std::uint64_t> expected =
            handshake_payload(seed, candidate, attempt, words);
        const bool ok =
            echoed == expected && checksum == fnv1a64(expected);
        *passed = ok;
        comm.send_value<int>(cand_local, kHandshakeTag + 2, ok ? 1 : 0);
      }
    };
    RunOptions opts;
    opts.capture_failure = true;  // a crashing candidate fails, not throws
    const JobTicketPtr ticket = start_job_on(
        {std::min(verifier, candidate), std::max(verifier, candidate)}, body,
        opts);
    const RunResult rr = finish_job(ticket);
    const bool ok = !rr.failed() && *passed;

    std::lock_guard<std::mutex> lock(health_mutex_);
    if (ok) {
      if (transition(candidate, RankHealth::kAlive))
        admitted.push_back(candidate);
    } else {
      int& failures =
          probation_failures_[static_cast<std::size_t>(candidate)];
      ++failures;
      transition(candidate, failures >= options.max_failures
                                ? RankHealth::kQuarantined
                                : RankHealth::kProbation);
    }
  }
  return admitted;
}

RankPool::~RankPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void RankPool::worker_main(int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    dispatch_cv_.wait(lock, [&]() {
      return stop_ || slots_[static_cast<std::size_t>(rank)].ticket != nullptr;
    });
    if (stop_) return;
    const JobTicketPtr ticket = slots_[static_cast<std::size_t>(rank)].ticket;
    const int local = slots_[static_cast<std::size_t>(rank)].local_rank;
    lock.unlock();
    // rank_main never throws: job errors are captured into the JobExec and
    // surfaced by finalize() on the launcher thread, so a crashing tenant
    // cannot take the resident worker down with it.
    ticket->job->rank_main(local, ticket->body);
    lock.lock();
    slots_[static_cast<std::size_t>(rank)].ticket = nullptr;
    slots_[static_cast<std::size_t>(rank)].local_rank = -1;
    ++ticket->ranks_done;
    if (ticket->ranks_done == static_cast<int>(ticket->members.size()))
      done_cv_.notify_all();
  }
}

JobTicketPtr RankPool::start_job_on(const std::vector<int>& members,
                                    std::function<void(Comm&)> body,
                                    const RunOptions& options) {
  CASP_CHECK_MSG(!members.empty(), "pool job needs at least one member rank");
  CASP_CHECK_MSG(std::is_sorted(members.begin(), members.end()) &&
                     std::adjacent_find(members.begin(), members.end()) ==
                         members.end(),
                 "pool job members must be ascending and distinct");
  auto ticket = std::make_shared<JobTicket>();
  ticket->members = members;
  ticket->body = std::move(body);
  ticket->capture_failure = options.capture_failure;
  // Fresh world per job: mailboxes, fault state, and sched state must not
  // leak between tenants (an aborted job strands queued messages by
  // design). The world is sized to the member set, so the body sees a
  // dense [0, members.size()) rank space wherever the job landed.
  ticket->job = std::make_shared<detail::JobExec>(
      static_cast<int>(members.size()), options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int r : members)
      CASP_CHECK_MSG(r >= 0 && r < size_ &&
                         slots_[static_cast<std::size_t>(r)].ticket == nullptr,
                     "pool job member rank out of range or busy");
    for (std::size_t i = 0; i < members.size(); ++i) {
      Slot& slot = slots_[static_cast<std::size_t>(members[i])];
      slot.ticket = ticket;
      slot.local_rank = static_cast<int>(i);
    }
  }
  dispatch_cv_.notify_all();
  ticket->job->start_watchdog();
  return ticket;
}

RunResult RankPool::finish_job(const JobTicketPtr& ticket) {
  CASP_CHECK_MSG(ticket != nullptr && ticket->job != nullptr,
                 "finish_job needs a live ticket");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&]() {
      return ticket->ranks_done == static_cast<int>(ticket->members.size());
    });
  }
  ticket->job->stop_watchdog();
  ++jobs_run_;
  return ticket->job->finalize(ticket->capture_failure);
}

std::vector<int> RankPool::idle_ranks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> idle;
  for (int r = 0; r < size_; ++r)
    if (slots_[static_cast<std::size_t>(r)].ticket == nullptr)
      idle.push_back(r);
  return idle;
}

RunResult RankPool::run_job(const std::function<void(Comm&)>& body,
                            const RunOptions& options) {
  std::vector<int> all(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) all[static_cast<std::size_t>(r)] = r;
  return finish_job(start_job_on(all, body, options));
}

SupervisedResult RankPool::run_supervised(
    const std::function<void(Comm&)>& body, const SupervisorOptions& options) {
  return detail::supervise(
      [this, &body](const RunOptions& attempt_opts) {
        return run_job(body, attempt_opts);
      },
      options);
}

}  // namespace casp::vmpi
