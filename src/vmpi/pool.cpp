#include "vmpi/pool.hpp"

#include "common/error.hpp"
#include "vmpi/job_exec.hpp"

namespace casp::vmpi {

const char* to_string(RankHealth health) {
  switch (health) {
    case RankHealth::kAlive: return "alive";
    case RankHealth::kSuspect: return "suspect";
    case RankHealth::kDead: return "dead";
  }
  return "unknown";
}

RankPool::RankPool(int size) : size_(size) {
  CASP_CHECK_MSG(size >= 1, "rank pool needs at least one rank");
  done_generation_.assign(static_cast<std::size_t>(size), 0);
  health_.assign(static_cast<std::size_t>(size), RankHealth::kAlive);
  workers_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    workers_.emplace_back([this, r]() { worker_main(r); });
}

RankHealth RankPool::health(int rank) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (rank < 0 || rank >= size_) return RankHealth::kDead;
  return health_[static_cast<std::size_t>(rank)];
}

void RankPool::mark_dead(int rank) {
  if (rank < 0 || rank >= size_) return;
  std::lock_guard<std::mutex> lock(health_mutex_);
  health_[static_cast<std::size_t>(rank)] = RankHealth::kDead;
}

void RankPool::mark_suspect(int rank) {
  if (rank < 0 || rank >= size_) return;
  std::lock_guard<std::mutex> lock(health_mutex_);
  // Dead is sticky: a suspect verdict never resurrects a dead rank.
  if (health_[static_cast<std::size_t>(rank)] != RankHealth::kDead)
    health_[static_cast<std::size_t>(rank)] = RankHealth::kSuspect;
}

void RankPool::clear_suspects() {
  std::lock_guard<std::mutex> lock(health_mutex_);
  for (RankHealth& h : health_)
    if (h == RankHealth::kSuspect) h = RankHealth::kAlive;
}

std::vector<int> RankPool::alive_ranks() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  std::vector<int> alive;
  for (int r = 0; r < size_; ++r)
    if (health_[static_cast<std::size_t>(r)] != RankHealth::kDead)
      alive.push_back(r);
  return alive;
}

int RankPool::alive_count() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  int n = 0;
  for (const RankHealth& h : health_)
    if (h != RankHealth::kDead) ++n;
  return n;
}

RankPool::~RankPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void RankPool::worker_main(int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    dispatch_cv_.wait(lock, [&]() {
      return stop_ ||
             done_generation_[static_cast<std::size_t>(rank)] <
                 job_generation_;
    });
    if (stop_) return;
    const std::uint64_t gen = job_generation_;
    detail::JobExec* job = job_;
    const std::function<void(Comm&)>* body = body_;
    lock.unlock();
    // rank_main never throws: job errors are captured into the JobExec and
    // surfaced by finalize() on the launcher thread, so a crashing tenant
    // cannot take the resident worker down with it.
    job->rank_main(rank, *body);
    lock.lock();
    done_generation_[static_cast<std::size_t>(rank)] = gen;
    ++ranks_done_;
    if (ranks_done_ == size_) done_cv_.notify_all();
  }
}

RunResult RankPool::run_job(const std::function<void(Comm&)>& body,
                            const RunOptions& options) {
  // Fresh world per job: mailboxes, fault state, and sched state must not
  // leak between tenants (an aborted job strands queued messages by
  // design).
  detail::JobExec job(size_, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    body_ = &body;
    ranks_done_ = 0;
    ++job_generation_;
  }
  dispatch_cv_.notify_all();
  job.start_watchdog();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&]() { return ranks_done_ == size_; });
    job_ = nullptr;
    body_ = nullptr;
  }
  job.stop_watchdog();
  ++jobs_run_;
  return job.finalize(options.capture_failure);
}

SupervisedResult RankPool::run_supervised(
    const std::function<void(Comm&)>& body, const SupervisorOptions& options) {
  return detail::supervise(
      [this, &body](const RunOptions& attempt_opts) {
        return run_job(body, attempt_opts);
      },
      options);
}

}  // namespace casp::vmpi
