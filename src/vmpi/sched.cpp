#ifdef CASP_VMPI_SCHED

#include "vmpi/sched.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "vmpi/check.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/runtime.hpp"  // DeadlineExceeded (virtual-clock expiry)

namespace casp::vmpi {

namespace {

constexpr char kSchedPrefix[] = "casp-sched.v1:p";
constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

/// Virtual cost of one scheduling decision. The virtual clock is a pure
/// decision counter — deterministic across replays by construction — scaled
/// so RunOptions::deadline_ms budgets translate directly: a 1 ms deadline
/// buys 10 decisions.
constexpr std::int64_t kVirtualUsPerDecision = 100;

/// Same mixer the fault plane uses: decisions depend only on (seed,
/// decision ordinal), never on wall-clock or pointer values.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'z') return 10 + (c - 'a');
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// SchedPlan

SchedPlan SchedPlan::seeded(std::uint64_t seed) {
  SchedPlan plan;
  plan.mode = Mode::kSeeded;
  plan.seed = seed;
  return plan;
}

SchedPlan SchedPlan::replay(const std::string& schedule) {
  const std::string prefix = kSchedPrefix;
  if (schedule.compare(0, prefix.size(), prefix) != 0)
    throw std::invalid_argument("bad schedule string (want \"" + prefix +
                                "<size>:<choices>\"): " + schedule);
  std::size_t i = prefix.size();
  int size = 0;
  bool any = false;
  while (i < schedule.size() && schedule[i] >= '0' && schedule[i] <= '9') {
    size = size * 10 + (schedule[i] - '0');
    ++i;
    any = true;
  }
  if (!any || i >= schedule.size() || schedule[i] != ':')
    throw std::invalid_argument("bad schedule string (missing size): " +
                                schedule);
  if (size < 1)
    throw std::invalid_argument("bad schedule string (size must be >= 1): " +
                                schedule);
  ++i;
  SchedPlan plan;
  plan.mode = Mode::kReplay;
  plan.replay_size = size;
  for (; i < schedule.size(); ++i) {
    const int v = digit_value(schedule[i]);
    if (v < 0)
      throw std::invalid_argument(
          std::string("bad schedule string (choice digit '") + schedule[i] +
          "'): " + schedule);
    plan.choices.push_back(v);
  }
  return plan;
}

SchedPlan SchedPlan::parse(const std::string& spec) {
  if (spec.compare(0, 5, "seed=") == 0) {
    const std::string num = spec.substr(5);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(num.c_str(), &end, 10);
    if (num.empty() || end == nullptr || *end != '\0')
      throw std::invalid_argument("bad CASP_VMPI_SCHED seed: " + spec);
    return seeded(static_cast<std::uint64_t>(v));
  }
  if (spec.compare(0, 7, "replay=") == 0) return replay(spec.substr(7));
  if (spec.compare(0, sizeof(kSchedPrefix) - 1, kSchedPrefix) == 0)
    return replay(spec);
  throw std::invalid_argument(
      "bad CASP_VMPI_SCHED spec (want seed=<n> or replay=<schedule>): " +
      spec);
}

std::optional<SchedPlan> SchedPlan::from_env() {
  const char* s = std::getenv("CASP_VMPI_SCHED");
  if (s == nullptr || *s == '\0') return std::nullopt;
  const std::string spec(s);
  if (spec == "off" || spec == "0" || spec == "none") return std::nullopt;
  return parse(spec);
}

std::string SchedPlan::describe() const {
  std::ostringstream os;
  switch (mode) {
    case Mode::kOff:
      os << "off";
      break;
    case Mode::kSeeded:
      os << "seeded(seed=" << seed << ")";
      break;
    case Mode::kReplay:
      os << "replay(p=" << replay_size << ", " << choices.size()
         << " recorded choice(s))";
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// SchedTrace

bool SchedDecision::preemption() const {
  if (prev < 0 || chosen == prev) return false;
  return std::find(runnable.begin(), runnable.end(), prev) != runnable.end();
}

int SchedTrace::preemptions() const {
  int n = 0;
  for (const SchedDecision& d : decisions) n += d.preemption() ? 1 : 0;
  return n;
}

std::string SchedTrace::to_string() const {
  std::ostringstream os;
  os << kSchedPrefix << size << ":";
  for (const SchedDecision& d : decisions) {
    const auto it =
        std::find(d.runnable.begin(), d.runnable.end(), d.chosen);
    std::size_t idx = static_cast<std::size_t>(it - d.runnable.begin());
    if (idx >= sizeof(kDigits) - 1) idx = sizeof(kDigits) - 2;  // p > 36
    os << kDigits[idx];
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Scheduler

Scheduler::Scheduler(const SchedPlan& plan, int size)
    : plan_(plan), size_(size) {
  states_.assign(static_cast<std::size_t>(size), RankState::kUnstarted);
  waits_.assign(static_cast<std::size_t>(size), Wait{});
  trace_.size = size;
}

std::vector<int> Scheduler::runnable_locked() const {
  std::vector<int> out;
  for (int r = 0; r < size_; ++r) {
    if (states_[static_cast<std::size_t>(r)] == RankState::kRunnable)
      out.push_back(r);
  }
  return out;
}

void Scheduler::choose_locked(const std::vector<int>& runnable, int prev) {
  // Every decision point — forced moves included — burns one quantum of
  // virtual time. Expiry aborts the run like an error would, except blocked
  // receivers throw DeadlineExceeded and finalize() synthesizes the same
  // for runs that limp to completion; detach() is noexcept, so expiry can
  // only ever be signalled through the abort reason, never thrown here.
  virtual_us_ += kVirtualUsPerDecision;
  if (deadline_budget_us_ >= 0 && !deadline_hit_ &&
      virtual_us_ > deadline_budget_us_ &&
      abort_reason_ == AbortReason::kNone) {
    deadline_hit_ = true;
    abort_reason_ = AbortReason::kDeadline;
    std::ostringstream os;
    os << "casp-verify virtual deadline exceeded: " << virtual_us_
       << " virtual us against a " << deadline_budget_us_
       << " us budget (" << kVirtualUsPerDecision
       << " us per scheduling decision)\n"
       << "  schedule: " << trace_.to_string() << "\n"
       << "  replay: CASP_VMPI_SCHED=\"replay=" << trace_.to_string()
       << "\"";
    deadlock_report_ = os.str();
    cv_.notify_all();
  }
  int chosen;
  if (runnable.size() == 1) {
    // Forced move: not a decision, not recorded, consumes no replay choice.
    chosen = runnable[0];
  } else {
    const std::size_t ordinal = trace_.decisions.size();
    std::size_t pick = 0;
    if (plan_.mode == SchedPlan::Mode::kSeeded) {
      pick = static_cast<std::size_t>(
                 splitmix64(plan_.seed ^
                            (0x9e3779b97f4a7c15ULL *
                             static_cast<std::uint64_t>(ordinal + 1)))) %
             runnable.size();
    } else {  // kReplay
      if (ordinal < plan_.choices.size()) {
        pick = static_cast<std::size_t>(plan_.choices[ordinal]) %
               runnable.size();
      } else {
        // Past the recorded prefix: non-preemptive default — keep the
        // previous rank while it stays runnable, else lowest index.
        const auto it = std::find(runnable.begin(), runnable.end(), prev);
        pick = (it == runnable.end())
                   ? 0
                   : static_cast<std::size_t>(it - runnable.begin());
      }
    }
    chosen = runnable[pick];
    SchedDecision d;
    d.runnable = runnable;
    d.chosen = chosen;
    d.prev = prev;
    trace_.decisions.push_back(std::move(d));
  }
  current_ = chosen;
}

bool Scheduler::wait_for_token_locked(std::unique_lock<std::mutex>& lock,
                                      int rank) {
  cv_.wait(lock, [&] {
    return abort_reason_ != AbortReason::kNone || current_ == rank;
  });
  return abort_reason_ == AbortReason::kNone && current_ == rank;
}

void Scheduler::attach(int rank) {
  std::unique_lock<std::mutex> lock(mu_);
  states_[static_cast<std::size_t>(rank)] = RankState::kRunnable;
  if (++attached_ == size_) {
    choose_locked(runnable_locked(), /*prev=*/-1);
    cv_.notify_all();
  }
  wait_for_token_locked(lock, rank);
}

void Scheduler::detach(int rank) noexcept {
  std::unique_lock<std::mutex> lock(mu_);
  states_[static_cast<std::size_t>(rank)] = RankState::kFinished;
  if (current_ != rank || abort_reason_ != AbortReason::kNone) return;
  const std::vector<int> runnable = runnable_locked();
  if (!runnable.empty()) {
    choose_locked(runnable, rank);
    cv_.notify_all();
    return;
  }
  bool anyone_blocked = false;
  for (const RankState st : states_) {
    anyone_blocked = anyone_blocked || st == RankState::kBlocked;
  }
  if (anyone_blocked) {
    // The last runnable rank finished while others still wait: exact
    // deadlock. detach cannot throw, so record the report and wake the
    // blocked ranks — they throw DeadlockDetected from block_recv.
    abort_reason_ = AbortReason::kDeadlock;
    deadlock_report_ = deadlock_report_locked(rank);
    cv_.notify_all();
    return;
  }
  current_ = -1;  // everyone finished
}

void Scheduler::yield(int rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (abort_reason_ != AbortReason::kNone) return;
  if (current_ != rank) return;  // free-running teardown; no scheduling
  choose_locked(runnable_locked(), rank);
  if (current_ != rank) {
    cv_.notify_all();
    wait_for_token_locked(lock, rank);
  }
}

void Scheduler::block_recv(int rank, std::uint64_t context, int src_world,
                           int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  if (abort_reason_ == AbortReason::kError) throw Aborted();
  if (abort_reason_ == AbortReason::kDeadline)
    throw DeadlineExceeded(deadlock_report_);
  if (abort_reason_ == AbortReason::kDeadlock)
    throw DeadlockDetected(deadlock_report_);
  const std::size_t r = static_cast<std::size_t>(rank);
  states_[r] = RankState::kBlocked;
  waits_[r] = Wait{context, src_world, tag};
  const std::vector<int> runnable = runnable_locked();
  if (runnable.empty()) {
    abort_reason_ = AbortReason::kDeadlock;
    deadlock_report_ = deadlock_report_locked(rank);
    cv_.notify_all();
    throw DeadlockDetected(deadlock_report_);
  }
  choose_locked(runnable, rank);
  cv_.notify_all();
  cv_.wait(lock, [&] {
    return abort_reason_ != AbortReason::kNone ||
           (states_[r] == RankState::kRunnable && current_ == rank);
  });
  if (abort_reason_ == AbortReason::kError) throw Aborted();
  if (abort_reason_ == AbortReason::kDeadline)
    throw DeadlineExceeded(deadlock_report_);
  if (abort_reason_ == AbortReason::kDeadlock)
    throw DeadlockDetected(deadlock_report_);
}

void Scheduler::notify_delivery(int dest_rank, std::uint64_t context,
                                int src_world, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t d = static_cast<std::size_t>(dest_rank);
  if (states_[d] != RankState::kBlocked) return;
  const Wait& w = waits_[d];
  if (w.context != context || w.tag != tag) return;
  if (w.src_world >= 0 && w.src_world != src_world) return;
  // Re-armed: the receiver joins the runnable set and competes for the
  // token at the sender's next decision point. No wakeup is needed yet —
  // the sender still holds the token.
  states_[d] = RankState::kRunnable;
}

void Scheduler::abort_all() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (abort_reason_ == AbortReason::kNone)
    abort_reason_ = AbortReason::kError;
  cv_.notify_all();
}

bool Scheduler::aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abort_reason_ != AbortReason::kNone;
}

void Scheduler::arm_virtual_deadline(std::int64_t budget_us) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_budget_us_ = budget_us < 0 ? -1 : budget_us;
}

std::int64_t Scheduler::virtual_now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_us_;
}

bool Scheduler::deadline_hit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_hit_;
}

void Scheduler::set_report_builder(std::function<std::string()> builder) {
  std::lock_guard<std::mutex> lock(mu_);
  report_builder_ = std::move(builder);
}

std::string Scheduler::schedule_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.to_string();
}

SchedTrace Scheduler::trace_copy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

std::string Scheduler::deadlock_report_locked(int rank) const {
  std::ostringstream os;
  if (report_builder_) {
    os << report_builder_();
  } else {
    os << "vmpi deadlock detected: every live rank is blocked and no "
          "queued message matches any pending receive\n";
    for (int r = 0; r < size_; ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      os << "  rank " << r << ": ";
      if (states_[i] == RankState::kBlocked) {
        os << "waiting for a message from rank " << waits_[i].src_world
           << " (tag " << waits_[i].tag << ", context 0x" << std::hex
           << waits_[i].context << std::dec << ")";
      } else {
        os << (states_[i] == RankState::kFinished ? "finished" : "running");
      }
      os << "\n";
    }
  }
  (void)rank;
  if (analyzer_ != nullptr) {
    os << "  schedule analysis:\n";
    for (int r = 0; r < size_; ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      if (states_[i] != RankState::kBlocked) continue;
      os << "    rank " << r << ": "
         << analyzer_->describe_wait(waits_[i].context, waits_[i].src_world,
                                     r, waits_[i].tag)
         << "\n";
    }
  }
  const std::string schedule = trace_.to_string();
  os << "  schedule: " << schedule << "\n"
     << "  replay: CASP_VMPI_SCHED=\"replay=" << schedule << "\"";
  return os.str();
}

// ---------------------------------------------------------------------------
// SchedState

namespace {
std::atomic<SchedState*>& active_state() {
  static std::atomic<SchedState*> s{nullptr};
  return s;
}
thread_local int tls_sched_rank = -1;
}  // namespace

SchedState::SchedState(const SchedPlan& plan, int size)
    : sched_(plan, size), hb_(size) {
  SchedState* expected = nullptr;
  if (!active_state().compare_exchange_strong(expected, this))
    throw std::logic_error(
        "casp-verify: a scheduled vmpi run is already active in this "
        "process; scheduled runs cannot nest");
  sched_.set_analyzer(&hb_);
  schedhook::install(&SchedState::hook_trampoline);
  installed_ = true;
}

SchedState::~SchedState() { deactivate(); }

void SchedState::deactivate() noexcept {
  if (installed_) {
    schedhook::install(nullptr);
    installed_ = false;
  }
  SchedState* expected = this;
  active_state().compare_exchange_strong(expected, nullptr);
}

void SchedState::attach_thread(int rank) {
  tls_sched_rank = rank;
  sched_.attach(rank);
}

void SchedState::detach_thread(int rank) noexcept {
  sched_.detach(rank);
  tls_sched_rank = -1;
}

void SchedState::hook_trampoline(schedhook::Event event, const void* object,
                                 long value) {
  SchedState* state = active_state().load(std::memory_order_acquire);
  if (state != nullptr) state->on_hook(event, object, value);
}

void SchedState::on_hook(schedhook::Event event, const void* object,
                         long value) {
  const int rank = tls_sched_rank;
  if (rank < 0) return;  // launcher / supervisor thread: not scheduled
  // Record BEFORE yielding: the emitting rank still holds the token here,
  // so the analyzer stays single-threaded — and the recorded order matches
  // the order the underlying atomic ops actually happened. Recording after
  // the yield would let another rank observe a refcount transition (the
  // fetch_sub is already done) before the release edge exists in the
  // analyzer, manufacturing false sole-owner races.
  if (!sched_.aborted()) hb_.on_event(rank, event, object, value);
  sched_.yield(rank);
}

SchedSummary SchedState::summary() const {
  SchedSummary out;
  out.trace = sched_.trace_copy();
  out.schedule = out.trace.to_string();
  out.findings = hb_.findings();
  out.deadline_hit = sched_.deadline_hit();
  out.virtual_us = sched_.virtual_now_us();
  return out;
}

}  // namespace casp::vmpi

#endif  // CASP_VMPI_SCHED
