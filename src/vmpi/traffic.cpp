#include "vmpi/traffic.hpp"

// TrafficStats is header-only; this TU anchors the component.
namespace casp::vmpi {}
