// SPMD corpus for the casp-verify exploration driver.
//
// Small, self-contained vmpi programs in two families:
//
//   good  — patterns the library actually runs (bcast trees, pipelined
//           ibcast stages as in SUMMA, checkpoint-resume consensus, rebatch
//           consensus). Exploration across schedules and fault seeds must
//           keep these clean — any flag is an analyzer false positive.
//
//   buggy — the known-bug corpus. Each reintroduces a concurrency bug this
//           codebase has actually had (or a canonical variant): the PR-1
//           crossed-tag deadlock, the PR-2 release_or_copy relaxed
//           sole-owner race, mutation-after-send, racing same-(dest, tag)
//           sends, and zero-copy ownership leaking around the transport.
//           Exploration must flag every one with a replayable schedule.
//
// Bodies must be schedule-pure: decisions depend only on rank and received
// data, never on timing — so replaying a schedule string reproduces the run
// bit for bit.
#pragma once

#ifdef CASP_VMPI_SCHED

#include <functional>
#include <string>
#include <vector>

#include "vmpi/comm.hpp"

namespace casp::vmpi::corpus {

struct Program {
  std::string name;
  int size = 2;
  /// True for known-bug programs: exploration is expected to flag them
  /// (findings or a deadlock) on at least one schedule.
  bool buggy = false;
  /// What the analyzer should report, for the harness to assert on:
  /// a finding kind ("sole_owner_race", …), "deadlock", or
  /// "deadline_exceeded". Empty for good programs.
  std::string expected;
  /// Virtual-clock deadline armed on every explored run of this program
  /// (milliseconds; 0 = none). Programs with a deadline exercise the
  /// scheduler's deterministic deadline-expiry interleavings.
  std::int64_t deadline_ms = 0;
  std::function<void(Comm&)> body;
};

/// The full corpus (good + buggy), stable order and names.
std::vector<Program> programs();

/// Lookup by name; throws std::invalid_argument listing valid names.
Program find(const std::string& name);

}  // namespace casp::vmpi::corpus

#endif  // CASP_VMPI_SCHED
