// Deterministic cooperative scheduler for the casp-verify plane.
//
// Under CASP_VMPI_SCHED + an enabled SchedPlan, the rank threads of a vmpi
// job stop free-running: a single token is passed between them and only the
// holder executes. Every transport operation (send, receive, collective tree
// hop), payload refcount transition, and memory-budget commit is a decision
// point where the scheduler may hand the token to a different runnable rank.
// The sequence of decisions is the *schedule*; it is recorded as a compact
// string
//
//   casp-sched.v1:p<size>:<base36 digit per decision>
//
// where each digit is the index of the chosen rank within the sorted
// runnable set at that decision (decisions with a single runnable rank are
// forced and not recorded). Replaying the string reproduces the exact
// interleaving, byte for byte.
//
// Two policies drive fresh runs:
//   seeded  — splitmix64(seed ^ decision counter) picks among runnables;
//             32 seeds cover a broad sample of interleavings cheaply.
//   replay  — consume a recorded choice prefix, then fall back to a
//             non-preemptive default (keep running the previous rank while
//             it stays runnable). The systematic explorer (sched_explore)
//             drives CHESS-style bounded search by extending prefixes taken
//             from recorded traces, pruned at preemption bound <= 2.
//
// Because exactly one rank runs at a time, wakeups cannot be lost at the
// scheduler level: a receiver re-checks its mailbox (try_pop) before
// blocking, and only the token-holding sender can deliver in between. An
// empty runnable set is therefore an *exact* deadlock — no sampling
// watchdog involved — and is reported in the PR-1 watchdog format with
// happens-before annotations and the replay string appended.
#pragma once

#ifdef CASP_VMPI_SCHED

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "vmpi/hb.hpp"

namespace casp::vmpi {

/// Thrown by vmpi::run when a scheduled run completes but the
/// happens-before analyzer produced findings (and no rank failed first).
class ScheduleViolation : public std::logic_error {
 public:
  explicit ScheduleViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// How to drive the scheduler for one run.
struct SchedPlan {
  enum class Mode { kOff, kSeeded, kReplay };

  Mode mode = Mode::kOff;
  std::uint64_t seed = 1;      ///< kSeeded
  int replay_size = 0;         ///< kReplay: world size baked into the string
  std::vector<int> choices;    ///< kReplay: recorded decision prefix

  bool enabled() const { return mode != Mode::kOff; }

  static SchedPlan seeded(std::uint64_t seed);
  /// Parse a "casp-sched.v1:p<size>:<digits>" string (as printed in
  /// diagnostics and RunResult::sched). Throws std::invalid_argument on a
  /// malformed string.
  static SchedPlan replay(const std::string& schedule);
  /// Parse an env-style spec: "seed=<n>" or "replay=<schedule string>"
  /// (also accepts a bare schedule string). Throws std::invalid_argument.
  static SchedPlan parse(const std::string& spec);
  /// Read CASP_VMPI_SCHED from the environment; nullopt when unset/empty.
  static std::optional<SchedPlan> from_env();

  std::string describe() const;
};

/// One recorded decision: which ranks could run, which was picked, and who
/// held the token before (prev != chosen while prev is still runnable is a
/// preemption — the quantity the systematic explorer bounds).
struct SchedDecision {
  std::vector<int> runnable;
  int chosen = -1;
  int prev = -1;
  bool preemption() const;
};

struct SchedTrace {
  int size = 0;
  std::vector<SchedDecision> decisions;
  int preemptions() const;
  std::string to_string() const;
};

/// What a scheduled run leaves behind in RunResult::sched.
struct SchedSummary {
  std::string schedule;                 ///< replayable string for this run
  SchedTrace trace;                     ///< full decision log (exploration)
  std::vector<SchedFinding> findings;   ///< happens-before verdicts
  /// Virtual-clock deadline verdict (arm_virtual_deadline): the run burned
  /// its budget mid-schedule. JobExec::finalize turns this into a
  /// "deadline_exceeded" failure when no rank error won first.
  bool deadline_hit = false;
  /// Virtual microseconds of scheduler time consumed
  /// (kVirtualUsPerDecision per decision point, forced moves included).
  std::int64_t virtual_us = 0;
};

/// The token-passing scheduler. All methods are called from rank threads;
/// one instance serves one vmpi::run invocation.
class Scheduler {
 public:
  Scheduler(const SchedPlan& plan, int size);

  /// First call made by each rank thread; blocks until every rank has
  /// attached and this rank is scheduled to run.
  void attach(int rank);
  /// Rank is done (normally or via exception); hands the token on. Never
  /// throws — it runs after catch blocks in the runtime thread body.
  void detach(int rank) noexcept;

  /// Decision point. May pass the token to another rank and block until it
  /// comes back. Returns silently (without rescheduling) once the run is
  /// aborted, so it is safe on noexcept paths such as Payload::drop.
  void yield(int rank);

  /// The rank found no matching message and blocks. Returns when a matching
  /// delivery re-armed it and the token came back; throws DeadlockDetected
  /// when blocking would leave no runnable rank (or the run aborted on a
  /// deadlock), and Aborted when the run aborted on an error.
  void block_recv(int rank, std::uint64_t context, int src_world, int tag);

  /// Token-holding sender delivered a message: re-arm a blocked receiver
  /// whose (context, src, tag) matches. src_world < 0 in the wait entry
  /// matches any source (not used today but mirrors Mailbox matching).
  void notify_delivery(int dest_rank, std::uint64_t context, int src_world,
                       int tag);

  /// Error teardown (mirrors World::abort_all): wake everyone; blocked
  /// receivers throw Aborted, yielders return and free-run.
  void abort_all() noexcept;

  bool aborted() const;

  /// Arm the VIRTUAL deadline: every scheduling decision advances a virtual
  /// clock by kVirtualUsPerDecision microseconds, and a run whose clock
  /// passes `budget_us` aborts with reason kDeadline — blocked receivers
  /// throw DeadlineExceeded, running ranks free-run to teardown, and the
  /// summary records deadline_hit. Because the clock depends only on the
  /// decision count, deadline-expiry interleavings replay exactly (the
  /// wall-clock watchdog stays off under a schedule plan).
  void arm_virtual_deadline(std::int64_t budget_us);
  /// Virtual microseconds consumed so far.
  std::int64_t virtual_now_us() const;
  /// True iff the armed virtual deadline expired.
  bool deadline_hit() const;

  void set_analyzer(hb::Analyzer* analyzer) { analyzer_ = analyzer; }
  /// Optional richer deadlock-report body (runtime.cpp wires the PR-1
  /// watchdog formatter, which adds per-rank collective backtraces). The
  /// scheduler appends its happens-before annotations and the replay line.
  void set_report_builder(std::function<std::string()> builder);

  std::string schedule_string() const;
  SchedTrace trace_copy() const;

 private:
  enum class RankState { kUnstarted, kRunnable, kBlocked, kFinished };
  enum class AbortReason { kNone, kDeadlock, kError, kDeadline };

  struct Wait {
    std::uint64_t context = 0;
    int src_world = -1;
    int tag = 0;
  };

  std::vector<int> runnable_locked() const;
  /// Pick the next rank among `runnable` (non-empty), record the decision
  /// when it was a real choice, and update current_.
  void choose_locked(const std::vector<int>& runnable, int prev);
  /// Block the calling rank thread until it holds the token or the run
  /// aborted. Returns true when scheduled, false on abort.
  bool wait_for_token_locked(std::unique_lock<std::mutex>& lock, int rank);
  std::string deadlock_report_locked(int rank) const;

  const SchedPlan plan_;
  const int size_;
  hb::Analyzer* analyzer_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RankState> states_;
  std::vector<Wait> waits_;
  int attached_ = 0;
  int current_ = -1;
  std::size_t decision_index_ = 0;  ///< consumed replay choices
  SchedTrace trace_;
  AbortReason abort_reason_ = AbortReason::kNone;
  std::int64_t virtual_us_ = 0;           ///< decision-count virtual clock
  std::int64_t deadline_budget_us_ = -1;  ///< armed when >= 0
  bool deadline_hit_ = false;
  std::string deadlock_report_;
  std::function<std::string()> report_builder_;
};

/// Glue object owned by vmpi::run for the duration of a scheduled run:
/// scheduler + analyzer + the process-global schedhook handler and the
/// thread-local rank identity it needs. Only one SchedState can be active
/// in a process at a time (enforced — vmpi jobs never nest).
class SchedState {
 public:
  SchedState(const SchedPlan& plan, int size);
  ~SchedState();

  SchedState(const SchedState&) = delete;
  SchedState& operator=(const SchedState&) = delete;

  Scheduler& scheduler() { return sched_; }
  hb::Analyzer& analyzer() { return hb_; }

  /// Rank-thread bookends: bind/unbind the thread-local rank id and
  /// attach/detach from the scheduler.
  void attach_thread(int rank);
  void detach_thread(int rank) noexcept;

  /// Stop reacting to schedhook events (after the last rank thread joined,
  /// before results are read off the analyzer).
  void deactivate() noexcept;

  SchedSummary summary() const;

 private:
  static void hook_trampoline(schedhook::Event event, const void* object,
                              long value);
  void on_hook(schedhook::Event event, const void* object, long value);

  Scheduler sched_;
  hb::Analyzer hb_;
  bool installed_ = false;
};

}  // namespace casp::vmpi

#endif  // CASP_VMPI_SCHED
