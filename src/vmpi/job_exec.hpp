// Internal: the per-job execution core shared by vmpi::run (fresh threads
// per job) and vmpi::RankPool (resident threads across jobs). Not part of
// the public vmpi surface — include runtime.hpp or pool.hpp instead.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/timer.hpp"
#include "vmpi/runtime.hpp"

namespace casp::vmpi::detail {

/// One virtual job in flight: the world (mailboxes, fault state, sched
/// state), the first-error capture, the deadlock watchdog, and the
/// finalization path (sched summary, failure classification or rethrow,
/// CASP_VMPI_CHECK leak sweeps). The launcher owns thread placement: it
/// calls rank_main(r, body) once per rank from whatever thread backs that
/// rank, brackets the job with start_watchdog()/stop_watchdog(), and calls
/// finalize() exactly once after every rank_main returned.
class JobExec {
 public:
  JobExec(int size, const RunOptions& options);

  /// Per-rank SPMD main: constructs the Comm, binds the casp-verify
  /// scheduler token if one is active, runs the body with abort/error
  /// capture, and publishes the rank's recorder/traffic/times into the
  /// result. Safe to call concurrently for distinct ranks.
  void rank_main(int r, const std::function<void(Comm&)>& body);

  /// Start the sampling deadlock watchdog (no-op under a scheduler plan or
  /// CASP_VMPI_WATCHDOG_MS=0). Call after the rank threads are dispatched.
  void start_watchdog();
  /// Stop and join the watchdog. Call after every rank_main returned.
  void stop_watchdog();

  /// Collect the job outcome: stamp wall time, fold in the sched summary,
  /// then either classify the first error into RunResult::failure
  /// (capture_failure) or rethrow it; clean CASP_VMPI_CHECK jobs also run
  /// the stranded-collective and user-tag leak sweeps.
  RunResult finalize(bool capture_failure);

 private:
  int size_;
  std::shared_ptr<World> world_;
  RunResult result_;
  Stopwatch watch_;
  std::int64_t deadline_ms_ = 0;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  int failed_rank_ = -1;
  std::string failed_phase_;

  std::mutex wd_mutex_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::thread watchdog_;
};

/// The supervised-restart loop shared by the free run_supervised and
/// RankPool::run_supervised: `attempt` runs one capture_failure attempt
/// under the given options; recoverable failures relaunch with the fired
/// fault disarmed until options.max_restarts is exhausted.
SupervisedResult supervise(
    const std::function<RunResult(const RunOptions&)>& attempt,
    const SupervisorOptions& options);

}  // namespace casp::vmpi::detail
