#include "vmpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <set>
#include <thread>

#include "common/error.hpp"

namespace casp::vmpi {

TrafficSummary RunResult::traffic_summary() const {
  TrafficSummary summary;
  for (const TrafficStats& stats : traffic) {
    for (const auto& [phase, t] : stats.per_phase()) {
      summary.total_per_phase[phase] += t;
      PhaseTraffic& mx = summary.max_per_phase[phase];
      mx.messages = std::max(mx.messages, t.messages);
      mx.bytes = std::max(mx.bytes, t.bytes);
    }
  }
  return summary;
}

double RunResult::max_time(const std::string& name) const {
  double mx = 0.0;
  for (const TimeAccumulator& acc : times) mx = std::max(mx, acc.get(name));
  return mx;
}

std::vector<std::string> RunResult::time_names() const {
  std::set<std::string> names;
  for (const TimeAccumulator& acc : times)
    for (const auto& [name, seconds] : acc.all()) names.insert(name);
  return {names.begin(), names.end()};
}

RunResult run(int size, const std::function<void(Comm&)>& body) {
  CASP_CHECK_MSG(size >= 1, "virtual job needs at least one rank");
  auto world = std::make_shared<detail::World>(size);

  RunResult result;
  result.size = size;
  result.traffic.resize(static_cast<std::size_t>(size));
  result.times.resize(static_cast<std::size_t>(size));

  std::mutex error_mutex;
  std::exception_ptr first_error;

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r]() {
      Comm comm(world, r, size);
      try {
        body(comm);
      } catch (const Aborted&) {
        // Secondary casualty of another rank's failure; the primary
        // exception is already recorded.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world->abort_all();
      }
      result.traffic[static_cast<std::size_t>(r)] = comm.traffic();
      result.times[static_cast<std::size_t>(r)] = comm.times();
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = watch.seconds();

  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace casp::vmpi
