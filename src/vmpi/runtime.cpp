#include "vmpi/runtime.hpp"

#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "vmpi/job_exec.hpp"

namespace casp::vmpi {

TrafficSummary RunResult::traffic_summary() const {
  TrafficSummary summary;
  for (const TrafficStats& stats : traffic) {
    for (const auto& [phase, t] : stats.per_phase()) {
      summary.total_per_phase[phase] += t;
      PhaseTraffic& mx = summary.max_per_phase[phase];
      mx.messages = std::max(mx.messages, t.messages);
      mx.bytes = std::max(mx.bytes, t.bytes);
      mx.shipped = std::max(mx.shipped, t.shipped);
    }
  }
  return summary;
}

double RunResult::max_time(const std::string& name) const {
  double mx = 0.0;
  for (const TimeAccumulator& acc : times) mx = std::max(mx, acc.get(name));
  return mx;
}

std::vector<std::string> RunResult::time_names() const {
  std::set<std::string> names;
  for (const TimeAccumulator& acc : times)
    for (const auto& [name, seconds] : acc.all()) names.insert(name);
  return {names.begin(), names.end()};
}

std::string FailureReport::describe() const {
  std::ostringstream os;
  os << "job failed: " << kind;
  if (rank >= 0) os << " on rank " << rank;
  if (!phase.empty()) os << " during phase \"" << phase << "\"";
  os << " — " << what;
  return os.str();
}

namespace {

/// Map the first exception to the FailureReport taxonomy. Order matters:
/// the specific fault classes come before their std bases.
FailureReport classify_failure(const std::exception_ptr& error, int rank,
                               std::string phase) {
  FailureReport report;
  report.rank = rank;
  report.phase = std::move(phase);
  try {
    std::rethrow_exception(error);
  } catch (const InjectedRankCrash& e) {
    report.kind = "rank_crash";
    report.what = e.what();
  } catch (const PermanentRankCrash& e) {
    report.kind = "permanent_crash";
    report.what = e.what();
  } catch (const RetryExhausted& e) {
    report.kind = "retry_exhausted";
    report.what = e.what();
  } catch (const DeadlineExceeded& e) {
    report.kind = "deadline_exceeded";
    report.what = e.what();
  } catch (const DeadlockDetected& e) {
    report.kind = "deadlock";
    report.what = e.what();
  } catch (const CommunicatorOrderViolation& e) {
    report.kind = "communicator_order_violation";
    report.what = e.what();
  } catch (const CollectiveMismatch& e) {
    report.kind = "collective_mismatch";
    report.what = e.what();
  } catch (const MessageLeak& e) {
    report.kind = "message_leak";
    report.what = e.what();
#ifdef CASP_VMPI_SCHED
  } catch (const ScheduleViolation& e) {
    report.kind = "schedule_violation";
    report.what = e.what();
#endif
  } catch (const MemoryError& e) {
    report.kind = "memory_budget";
    report.what = e.what();
  } catch (const InputError& e) {
    report.kind = "input_error";
    report.what = e.what();
  } catch (const InvalidArgument& e) {
    report.kind = "invalid_argument";
    report.what = e.what();
  } catch (const std::exception& e) {
    report.kind = "exception";
    report.what = e.what();
  } catch (...) {
    report.kind = "exception";
    report.what = "unknown non-std exception";
  }
  return report;
}

/// The recoverable/non-recoverable verdict for every FailureReport kind the
/// runtime can emit — the supervisor's single source of truth. Recoverable
/// means a relaunch can plausibly survive: the fault was external to the
/// program logic and the disarmed plan removes it. Everything else recurs
/// identically on every attempt ("permanent_crash": the node stays dead on
/// this grid; "deadline_exceeded": the budget is already spent). The
/// failure-kind-classified lint rule checks that every kind string assigned
/// anywhere in src/ has an entry here.
struct KindClass {
  const char* kind;
  bool recoverable;
};
constexpr KindClass kKindTable[] = {
    {"rank_crash", true},
    {"retry_exhausted", true},
    {"deadlock", true},
    {"permanent_crash", false},
    {"deadline_exceeded", false},
    {"communicator_order_violation", false},
    {"collective_mismatch", false},
    {"message_leak", false},
    {"schedule_violation", false},
    {"memory_budget", false},
    {"input_error", false},
    {"invalid_argument", false},
    {"exception", false},
};

/// Watchdog sampling period. 0 disables the watchdog entirely; tests that
/// provoke deadlocks on purpose dial it down to fail fast.
int watchdog_interval_ms() {
  if (const char* s = std::getenv("CASP_VMPI_WATCHDOG_MS")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    // Malformed or trailing-garbage values must not silently disable the
    // watchdog (atoi("abc") == 0 would): fall through to the default.
    if (end != s && *end == '\0' && v >= 0 && v <= 1000000) {
      return static_cast<int>(v);
    }
  }
  return 100;
}

/// Per-rank dump of who waits for whom (and, with the checker compiled in,
/// which collective each rank is inside plus its recent collective history).
std::string build_deadlock_report(detail::World& world, int size) {
  std::ostringstream os;
  os << "vmpi deadlock detected: every live rank is blocked and no queued "
        "message matches any pending receive\n";
  for (int r = 0; r < size; ++r) {
    detail::RankStatus& st = world.status[static_cast<std::size_t>(r)];
    std::lock_guard<std::mutex> lock(st.mutex);
    os << "  rank " << r << ": ";
    if (st.blocked) {
      os << "waiting for a message from rank " << st.wait_src_world
         << " (tag " << st.wait_tag << ", context 0x" << std::hex
         << st.wait_context << std::dec << ")";
#ifdef CASP_VMPI_CHECK
      if (st.current.op != CollectiveOp::kNone)
        os << " inside " << describe_stamp(st.current);
#endif
    } else {
      os << (st.finished ? "finished" : "running");
    }
#ifdef CASP_VMPI_CHECK
    if (st.history_count > 0) {
      os << "; recent collectives (newest first):";
      const std::uint64_t depth =
          std::min<std::uint64_t>(st.history_count, st.history.size());
      for (std::uint64_t i = 0; i < depth; ++i) {
        const std::uint64_t idx =
            (st.history_count - 1 - i) % st.history.size();
        os << (i == 0 ? " " : " <- ") << describe_stamp(st.history[idx]);
      }
    }
#endif
    os << "\n";
  }
  return os.str();
}

#ifdef CASP_VMPI_CHECK
/// True iff `ancestor` appears on `child`'s split-ancestry chain (the world
/// communicator is context 0 and the root of every chain).
bool context_is_ancestor(const std::map<std::uint64_t, std::uint64_t>& tree,
                         std::uint64_t ancestor, std::uint64_t child) {
  std::uint64_t cur = child;
  // The tree is at most as deep as the number of splits; bound the walk
  // anyway so a (theoretical) context-hash collision cannot loop.
  for (std::size_t hops = 0; hops <= tree.size(); ++hops) {
    const auto it = tree.find(cur);
    if (it == tree.end()) return false;
    cur = it->second;
    if (cur == ancestor) return true;
  }
  return false;
}

/// When a deadlock involves one rank blocked in a collective on a parent
/// communicator and another blocked in a collective on that communicator's
/// split descendant, the stall is a communicator-lifetime ordering bug —
/// name it precisely instead of handing back the generic deadlock dump.
/// Returns "" when the pattern does not apply.
std::string diagnose_comm_order(detail::World& world, int size) {
  struct Blocked {
    int rank;
    std::uint64_t context;
    CollectiveStamp stamp;
  };
  std::vector<Blocked> in_collective;
  for (int r = 0; r < size; ++r) {
    detail::RankStatus& st = world.status[static_cast<std::size_t>(r)];
    std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.blocked || st.current.op == CollectiveOp::kNone) continue;
    in_collective.push_back({r, st.current_context, st.current});
  }
  std::lock_guard<std::mutex> lock(world.comm_tree_mutex);
  for (const Blocked& a : in_collective) {
    for (const Blocked& b : in_collective) {
      if (a.context == b.context) continue;
      if (!context_is_ancestor(world.comm_parent, a.context, b.context))
        continue;
      std::ostringstream os;
      os << "vmpi communicator-order violation: rank " << a.rank
         << " is blocked in " << describe_stamp(a.stamp)
         << " on communicator 0x" << std::hex << a.context << std::dec
         << " while rank " << b.rank << " is blocked in "
         << describe_stamp(b.stamp) << " on its split child 0x" << std::hex
         << b.context << std::dec
         << " — the ranks interleave parent and child collectives in "
            "divergent program orders";
      return os.str();
    }
  }
  return "";
}
#endif

}  // namespace

namespace detail {

JobExec::JobExec(int size, const RunOptions& options)
    : size_(size), deadline_ms_(options.deadline_ms) {
  CASP_CHECK_MSG(size >= 1, "virtual job needs at least one rank");
  world_ = std::make_shared<World>(size);
  const FaultPlan plan =
      options.faults.has_value() ? *options.faults : FaultPlan::from_env();
  if (plan.enabled())
    world_->faults = std::make_shared<FaultState>(plan, size);

#ifdef CASP_VMPI_SCHED
  const std::optional<SchedPlan> sched_plan =
      options.sched.has_value() ? options.sched : SchedPlan::from_env();
  if (sched_plan.has_value() && sched_plan->enabled()) {
    world_->sched = std::make_shared<SchedState>(*sched_plan, size);
    // Scheduler deadlock verdicts reuse the watchdog's per-rank formatter
    // (collective backtraces included) before appending their own
    // happens-before annotations and the replay line. The capture must be
    // weak: the builder lives inside the Scheduler, which lives inside the
    // World — a shared_ptr capture is a reference cycle and the World (rank
    // states, payload arenas) never frees.
    std::weak_ptr<World> world = world_;
    world_->sched->scheduler().set_report_builder([world, size]() {
      const std::shared_ptr<World> w = world.lock();
      return w ? build_deadlock_report(*w, size) : std::string();
    });
    // Under a schedule plan the wall-clock watchdog stays off (see
    // start_watchdog) and RunOptions::deadline_ms is enforced against the
    // scheduler's deterministic virtual clock instead, so deadline-expiry
    // interleavings are explorable and replay exactly.
    if (deadline_ms_ > 0)
      world_->sched->scheduler().arm_virtual_deadline(deadline_ms_ * 1000);
  }
#endif

  result_.size = size;
  result_.recorders.resize(static_cast<std::size_t>(size));
  result_.traffic.resize(static_cast<std::size_t>(size));
  result_.times.resize(static_cast<std::size_t>(size));
}

void JobExec::rank_main(int r, const std::function<void(Comm&)>& body) {
  Comm comm(world_, r, size_);
#ifdef CASP_VMPI_SCHED
  // Bind the thread-local rank id and wait for the scheduler token
  // before any hook can fire on this thread.
  if (world_->sched != nullptr) world_->sched->attach_thread(r);
#endif
  try {
    body(comm);
  } catch (const Aborted&) {
    // Secondary casualty of another rank's failure; the primary
    // exception is already recorded.
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
        // The failure report names the *first* casualty and the phase
        // its traffic ledger was in when it died.
        failed_rank_ = r;
        failed_phase_ = comm.traffic().phase();
      }
    }
    world_->abort_all();
  }
#ifdef CASP_VMPI_SCHED
  if (world_->sched != nullptr) world_->sched->detach_thread(r);
#endif
  world_->finished.fetch_add(1, std::memory_order_relaxed);
  {
    RankStatus& st = world_->status[static_cast<std::size_t>(r)];
    std::lock_guard<std::mutex> lock(st.mutex);
    st.finished = true;
  }
  result_.recorders[static_cast<std::size_t>(r)] = comm.recorder();
  result_.traffic[static_cast<std::size_t>(r)] = comm.traffic();
  result_.times[static_cast<std::size_t>(r)] = comm.times();
}

void JobExec::start_watchdog() {
  // Deadlock watchdog: a stalled virtual job has every live rank inside
  // Mailbox::pop with no deliverable message — once true it stays true, so
  // sampling is sound. Two consecutive quiet samples (no delivery between
  // them) plus an exact queue scan rule out the in-flight wakeup race.
  int interval_ms = watchdog_interval_ms();
  bool deadline_armed = deadline_ms_ > 0;
#ifdef CASP_VMPI_SCHED
  // A scheduled run detects deadlocks exactly (empty runnable set); the
  // sampling watchdog would misread token-parked threads as a stall, and
  // wall-clock deadlines are meaningless under a token-serialized schedule.
  if (world_->sched != nullptr) {
    interval_ms = 0;
    deadline_armed = false;
  }
#endif
  if (deadline_armed) {
    // Deadline enforcement rides the same sampler: keep at least ~4 samples
    // per deadline so overshoot stays a fraction of the budget, and arm the
    // thread even when the deadlock watchdog is disabled via env.
    const int cap = static_cast<int>(std::min<std::int64_t>(
        std::max<std::int64_t>(deadline_ms_ / 4, 1), 1000));
    interval_ms = interval_ms <= 0 ? cap : std::min(interval_ms, cap);
  }
  if (interval_ms <= 0) return;
  watchdog_ = std::thread([this, interval_ms, deadline_armed]() {
    std::uint64_t last_progress = ~std::uint64_t{0};
    int quiet_samples = 0;
    std::unique_lock<std::mutex> lk(wd_mutex_);
    while (!wd_stop_) {
      wd_cv_.wait_for(lk, std::chrono::milliseconds(interval_ms));
      if (wd_stop_) break;
      if (deadline_armed &&
          watch_.seconds() * 1000.0 > static_cast<double>(deadline_ms_)) {
        std::ostringstream os;
        os << "job deadline exceeded: ran " << watch_.seconds() * 1000.0
           << " ms against a " << deadline_ms_
           << " ms budget; cancelling all ranks";
        {
          std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_)
            first_error_ = std::make_exception_ptr(DeadlineExceeded(os.str()));
        }
        world_->abort_all();
        break;
      }
      const int blocked = world_->blocked.load(std::memory_order_relaxed);
      const int finished = world_->finished.load(std::memory_order_relaxed);
      const std::uint64_t progress =
          world_->progress.load(std::memory_order_relaxed);
      if (blocked == 0 || blocked + finished != size_ ||
          progress != last_progress) {
        last_progress = progress;
        quiet_samples = 0;
        continue;
      }
      bool live = false;  // a match exists or a rank moved under us
      for (int r = 0; r < size_ && !live; ++r) {
        RankStatus& st = world_->status[static_cast<std::size_t>(r)];
        std::lock_guard<std::mutex> slock(st.mutex);
        if (st.finished) continue;
        if (!st.blocked) {
          live = true;
          break;
        }
        live = world_->mailboxes[static_cast<std::size_t>(r)].has_match(
            st.wait_context, st.wait_src_world, st.wait_tag);
      }
      if (live) {
        quiet_samples = 0;
        continue;
      }
      if (++quiet_samples < 2) continue;
      const std::string report = build_deadlock_report(*world_, size_);
      std::exception_ptr diagnosis;
#ifdef CASP_VMPI_CHECK
      const std::string order = diagnose_comm_order(*world_, size_);
      if (!order.empty())
        diagnosis = std::make_exception_ptr(
            CommunicatorOrderViolation(order + "\n" + report));
#endif
      if (!diagnosis)
        diagnosis = std::make_exception_ptr(DeadlockDetected(report));
      {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = diagnosis;
      }
      world_->abort_all();
      break;
    }
  });
}

void JobExec::stop_watchdog() {
  if (!watchdog_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(wd_mutex_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  watchdog_.join();
}

RunResult JobExec::finalize(bool capture_failure) {
  result_.wall_seconds = watch_.seconds();

#ifdef CASP_VMPI_SCHED
  if (world_->sched != nullptr) {
    // All rank mains returned: stop reacting to stray hook events (e.g.
    // launcher-thread payload teardown) and collect the run's verdicts.
    world_->sched->deactivate();
    result_.sched = world_->sched->summary();
    // A virtual-deadline expiry is the primary verdict even when every rank
    // limped to a clean return after the abort (yield() goes free-running
    // instead of throwing — it sits on noexcept teardown paths). Synthesize
    // the failure before the findings check: findings from a truncated run
    // are secondary evidence.
    if (result_.sched->deadline_hit && !first_error_) {
      std::ostringstream os;
      os << "job deadline exceeded under the deterministic scheduler: "
         << result_.sched->virtual_us << " virtual us against a "
         << deadline_ms_ * 1000 << " us budget\n"
         << "  schedule: " << result_.sched->schedule << "\n"
         << "  replay: CASP_VMPI_SCHED=\"replay=" << result_.sched->schedule
         << "\"";
      first_error_ = std::make_exception_ptr(DeadlineExceeded(os.str()));
    }
    if (!result_.sched->findings.empty() && !first_error_) {
      std::ostringstream os;
      os << "casp-verify schedule violation: "
         << result_.sched->findings.size()
         << " happens-before finding(s):\n";
      for (const SchedFinding& f : result_.sched->findings)
        os << "  [" << f.kind << "] " << f.detail << "\n";
      os << "  schedule: " << result_.sched->schedule << "\n"
         << "  replay: CASP_VMPI_SCHED=\"replay=" << result_.sched->schedule
         << "\"";
      first_error_ = std::make_exception_ptr(ScheduleViolation(os.str()));
      failed_rank_ = result_.sched->findings.front().rank;
    }
  }
#endif

  if (first_error_) {
    if (capture_failure) {
      // The leftover-traffic sweeps below are skipped on purpose: an
      // aborted job legitimately strands queued messages.
      result_.failure =
          classify_failure(first_error_, failed_rank_, failed_phase_);
      return std::move(result_);
    }
    std::rethrow_exception(first_error_);
  }

#ifdef CASP_VMPI_CHECK
  // A clean job must leave no collective traffic behind: a stamped message
  // still queued means some rank sent inside a collective its peer never
  // entered (e.g. two ranks both believing they were the bcast root) —
  // silent divergence that produced no mismatch and no deadlock.
  std::ostringstream leak;
  bool leaked = false;
  for (int r = 0; r < size_; ++r) {
    for (const LeftoverCollective& l :
         world_->mailboxes[static_cast<std::size_t>(r)].stamped_leftovers()) {
      leak << "  rank " << r << " never received " << describe_stamp(l.stamp)
           << " sent by rank " << l.src_world << " (tag " << l.tag << ")\n";
      leaked = true;
    }
  }
  if (leaked)
    throw CollectiveMismatch(
        "vmpi collective traffic left unconsumed at job end — ranks "
        "disagree on a collective's shape:\n" +
        leak.str());

  // Same discipline for user-tag point-to-point traffic: a send whose
  // matching receive never ran is a latent protocol bug (wrong tag, wrong
  // destination, or a receive skipped on some branch). Senders that mean
  // it opt out per message with fire_and_forget.
  std::ostringstream tag_leak;
  bool tag_leaked = false;
  for (int r = 0; r < size_; ++r) {
    for (const LeftoverMessage& l :
         world_->mailboxes[static_cast<std::size_t>(r)].user_tag_leftovers()) {
      tag_leak << "  rank " << r << " never received tag " << l.tag << " ("
               << l.bytes << " bytes) sent by rank " << l.src_world << "\n";
      tag_leaked = true;
    }
  }
  if (tag_leaked)
    throw MessageLeak(
        "vmpi point-to-point messages left unconsumed at job end (send "
        "without a matching receive; mark intentional drops with "
        "fire_and_forget):\n" +
        tag_leak.str());
#endif
  return std::move(result_);
}

SupervisedResult supervise(
    const std::function<RunResult(const RunOptions&)>& attempt,
    const SupervisorOptions& options) {
  FaultPlan plan =
      options.faults.has_value() ? *options.faults : FaultPlan::from_env();
  SupervisedResult sup;
  sup.max_restarts = options.max_restarts;
  Stopwatch chain;  // whole-chain clock: attempts + backoff waits
  for (;;) {
    RunOptions attempt_opts;
    attempt_opts.faults = plan;
    attempt_opts.capture_failure = true;
    if (options.deadline_ms > 0) {
      // Each attempt runs under what is left of the chain budget (never 0:
      // a spent budget still gets one fast-failing probe so the failure
      // classifies as deadline_exceeded instead of hanging here).
      const auto elapsed =
          static_cast<std::int64_t>(chain.seconds() * 1000.0);
      attempt_opts.deadline_ms =
          std::max<std::int64_t>(options.deadline_ms - elapsed, 1);
    }
    RunResult result = attempt(attempt_opts);
    if (!result.failed() || !recoverable_failure(*result.failure) ||
        sup.restarts >= options.max_restarts) {
      sup.result = std::move(result);
      return sup;
    }
    sup.wasted_seconds += result.wall_seconds;
    // Disarm the fault that just fired so the deterministic plan does not
    // kill the relaunch at the same op; every other configured fault stays
    // live, mirroring "replace the dead node, keep the flaky network".
    plan = plan.disarmed(result.failure->kind);
    sup.recovered_failures.push_back(*std::move(result.failure));
    // Capped exponential backoff before the relaunch (mirrors the
    // transport's retry ladder): a crash-looping job must not hammer the
    // pool back-to-back. Two ledgers per attempt: the deterministic PLAN
    // (the ladder value this restart was asked to wait — schedule evidence,
    // reproducible across runs) and the MEASURED wall-clock sleep (timing
    // evidence, never deterministic).
    std::int64_t plan_us = 0;
    if (options.restart_backoff_base_us > 0) {
      plan_us = options.restart_backoff_base_us;
      for (int i = 0;
           i < sup.restarts && plan_us < options.restart_backoff_cap_us; ++i)
        plan_us *= 2;
      plan_us = std::min(plan_us, options.restart_backoff_cap_us);
    }
    std::int64_t measured_us = 0;
    if (plan_us > 0) {
      Stopwatch slept;
      std::this_thread::sleep_for(std::chrono::microseconds(plan_us));
      measured_us = static_cast<std::int64_t>(slept.seconds() * 1e6);
    }
    sup.backoff_plan_us.push_back(plan_us);
    sup.backoff_us.push_back(measured_us);
    ++sup.restarts;
  }
}

}  // namespace detail

RunResult run(int size, const std::function<void(Comm&)>& body,
              const RunOptions& options) {
  detail::JobExec job(size, options);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    threads.emplace_back([&job, &body, r]() { job.rank_main(r, body); });
  job.start_watchdog();
  for (std::thread& t : threads) t.join();
  job.stop_watchdog();
  return job.finalize(options.capture_failure);
}

RunResult run(int size, const std::function<void(Comm&)>& body) {
  return run(size, body, RunOptions{});
}

bool recoverable_failure(const FailureReport& report) {
  for (const KindClass& k : kKindTable)
    if (report.kind == k.kind) return k.recoverable;
  return false;  // unknown kinds never auto-relaunch
}

SupervisedResult run_supervised(int size,
                                const std::function<void(Comm&)>& body,
                                const SupervisorOptions& options) {
  return detail::supervise(
      [size, &body](const RunOptions& attempt_opts) {
        return run(size, body, attempt_opts);
      },
      options);
}

SupervisedResult run_supervised(int size,
                                const std::function<void(Comm&)>& body) {
  return run_supervised(size, body, SupervisorOptions{});
}

}  // namespace casp::vmpi
