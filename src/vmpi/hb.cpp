#ifdef CASP_VMPI_SCHED

#include "vmpi/hb.hpp"

#include <algorithm>
#include <sstream>

namespace casp::vmpi::hb {

bool clock_leq(const VectorClock& a, const VectorClock& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

void clock_join(VectorClock& a, const VectorClock& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::max(a[i], b[i]);
}

Analyzer::Analyzer(int size) : size_(size) {
  clocks_.assign(static_cast<std::size_t>(size),
                 VectorClock(static_cast<std::size_t>(size), 0));
}

void Analyzer::bump(int rank) {
  ++clocks_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(rank)];
}

Analyzer::BufferState& Analyzer::buffer_state(int rank, const void* buffer,
                                              bool creating) {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) {
    BufferState st;
    if (creating) {
      st.owners.insert(rank);
    } else {
      // First sighting through a non-create event: the buffer predates the
      // scheduled run or was made on the launcher thread. Ownership checks
      // would misfire, so mark it foreign.
      st.foreign = true;
    }
    it = buffers_.emplace(buffer, std::move(st)).first;
  }
  return it->second;
}

void Analyzer::add_finding(const std::string& kind, int rank,
                           const std::string& detail) {
  if (findings_.size() >= 64) return;  // bound a pathological program
  const std::string key = kind + "|" + detail;
  if (!finding_keys_.insert(key).second) return;
  findings_.push_back({kind, rank, detail});
}

std::uint64_t Analyzer::on_send(int rank, std::uint64_t context,
                                int dest_world, int tag, const void* buffer,
                                std::size_t bytes) {
  bump(rank);
  const VectorClock& clock = clocks_[static_cast<std::size_t>(rank)];
  const std::uint64_t id = next_msg_id_++;
  MessageRecord rec;
  rec.clock = clock;
  rec.buffer = buffer;
  rec.context = context;
  rec.dest_world = dest_world;
  rec.src_world = rank;
  rec.tag = tag;
  messages_.emplace(id, std::move(rec));
  ++triples_[{context, rank, dest_world, tag}].sent;
  if (buffer != nullptr) {
    BufferState& st = buffer_state(rank, buffer, /*creating=*/false);
    st.transported = true;
    st.last_event[rank] = clock;
  }
  if (tag >= 0) {
    auto& pending = pending_user_sends_[{context, dest_world, tag}];
    for (const PendingSend& p : pending) {
      if (p.src_world == rank) continue;
      if (!clock_leq(p.clock, clock) && !clock_leq(clock, p.clock)) {
        std::ostringstream os;
        os << "racing sends to (dest " << dest_world << ", tag " << tag
           << "): rank " << rank << " and rank " << p.src_world
           << " send concurrently with no happens-before order — receive "
              "matching disambiguates only by source, so arrival order is "
              "schedule-dependent (" << bytes << " bytes in flight)";
        add_finding("racing_send", rank, os.str());
      }
    }
    pending.push_back({rank, id, clock});
  }
  return id;
}

void Analyzer::on_recv(int rank, std::uint64_t msg_id) {
  auto it = messages_.find(msg_id);
  if (it == messages_.end()) return;
  const MessageRecord& rec = it->second;
  clock_join(clocks_[static_cast<std::size_t>(rank)], rec.clock);
  bump(rank);
  ++triples_[{rec.context, rec.src_world, rec.dest_world, rec.tag}].consumed;
  if (rec.buffer != nullptr) {
    BufferState& st = buffer_state(rank, rec.buffer, /*creating=*/false);
    st.owners.insert(rank);
    st.last_event[rank] = clocks_[static_cast<std::size_t>(rank)];
  }
  if (rec.tag >= 0) {
    auto pit = pending_user_sends_.find({rec.context, rec.dest_world,
                                         rec.tag});
    if (pit != pending_user_sends_.end()) {
      auto& vec = pit->second;
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [msg_id](const PendingSend& p) {
                                 return p.msg_id == msg_id;
                               }),
                vec.end());
    }
  }
  messages_.erase(it);
}

void Analyzer::on_event(int rank, schedhook::Event event, const void* object,
                        long value) {
  using schedhook::Event;
  const std::size_t r = static_cast<std::size_t>(rank);
  bump(rank);
  const VectorClock& clock = clocks_[r];

  if (event == Event::kAllocCommit) return;  // schedule point only

  BufferState& st =
      buffer_state(rank, object, event == Event::kBufferCreate);

  // A rank reading or acquiring a buffer another rank has already reclaimed
  // for mutation — without a happens-before edge from the reclaim — is a
  // use-after-release from the reader's point of view.
  auto check_reclaim_read = [&]() {
    if (st.reclaimed && st.reclaimer != rank &&
        !clock_leq(st.reclaim_clock, clock)) {
      std::ostringstream os;
      os << "rank " << rank << " reads a payload buffer rank "
         << st.reclaimer
         << " reclaimed for mutation with no happens-before edge between "
            "the reclaim and the read";
      add_finding("use_after_release", rank, os.str());
    }
  };
  auto check_ownership = [&](const char* verb) {
    if (!st.foreign && st.owners.count(rank) == 0) {
      std::ostringstream os;
      os << "rank " << rank << " " << verb
         << " a payload buffer it never received through the transport "
            "(zero-copy data crossed ranks outside a message edge)";
      add_finding("payload_ownership", rank, os.str());
    }
  };

  switch (event) {
    case Event::kBufferCreate:
      st.live = value;
      st.last_event[rank] = clock;
      break;
    case Event::kHandleAcquire:
      st.live = value;
      check_ownership("acquired a handle on");
      check_reclaim_read();
      st.last_event[rank] = clock;
      break;
    case Event::kHandleRelease:
      st.live = value;
      if (st.has_release) {
        clock_join(st.release_clock, clock);
      } else {
        st.release_clock = clock;
        st.has_release = true;
      }
      st.last_event[rank] = clock;
      if (st.live <= 0) buffers_.erase(object);
      break;
    case Event::kAccess:
      check_ownership("read bytes of");
      check_reclaim_read();
      st.last_event[rank] = clock;
      break;
    case Event::kObserveSoleAcquire:
      // Observing a handle count of 1 with acquire ordering synchronizes
      // with every release that produced it: join their clocks.
      if (value == 1 && st.has_release)
        clock_join(clocks_[r], st.release_clock);
      st.last_event[rank] = clocks_[r];
      break;
    case Event::kObserveSoleRelaxed:
      // The known-bug variant synchronizes with nothing.
      st.last_event[rank] = clock;
      break;
    case Event::kSteal: {
      for (const auto& [other, vc] : st.last_event) {
        if (other == rank) continue;
        if (!clock_leq(vc, clock)) {
          std::ostringstream os;
          os << "rank " << rank
             << " stole a shared payload allocation (release_or_copy "
                "sole-owner move) while rank " << other
             << "'s last use is not happens-before ordered against the "
                "steal — the sole-owner check does not synchronize with "
                "that rank's release";
          add_finding("sole_owner_race", rank, os.str());
        }
      }
      st.reclaimed = true;
      st.reclaim_clock = clock;
      st.reclaimer = rank;
      st.last_event[rank] = clock;
      break;
    }
    case Event::kMutate: {
      for (const auto& [other, vc] : st.last_event) {
        if (other == rank) continue;
        if (!clock_leq(vc, clock)) {
          std::ostringstream os;
          if (st.transported) {
            os << "rank " << rank
               << " mutated payload bytes after handing the buffer to the "
                  "transport; rank " << other
               << "'s use of the shared allocation is concurrent with the "
                  "mutation (mutation-after-send)";
            add_finding("mutation_after_send", rank, os.str());
          } else {
            os << "rank " << rank
               << " mutated payload bytes while rank " << other
               << " concurrently holds the shared allocation";
            add_finding("mutation_while_shared", rank, os.str());
          }
        }
      }
      if (st.transported && st.live > 1) {
        std::ostringstream os;
        os << "rank " << rank
           << " mutated payload bytes while " << (st.live - 1)
           << " other live handle(s) share the sent allocation "
              "(mutation-after-send)";
        add_finding("mutation_after_send", rank, os.str());
      }
      st.reclaimed = true;
      st.reclaim_clock = clock;
      st.reclaimer = rank;
      st.last_event[rank] = clock;
      break;
    }
    case Event::kAllocCommit:
      break;
  }
}

std::string Analyzer::describe_wait(std::uint64_t context, int src_world,
                                    int dest_world, int tag) const {
  const auto it = triples_.find({context, src_world, dest_world, tag});
  if (it == triples_.end() || it->second.sent == 0)
    return "no matching message was ever sent";
  const TripleStats& t = it->second;
  if (t.consumed >= t.sent) {
    std::ostringstream os;
    os << "all " << t.sent
       << " matching message(s) were already consumed by earlier receives "
          "— lost wakeup";
    return os.str();
  }
  std::ostringstream os;
  os << t.sent - t.consumed << " matching message(s) still queued";
  return os.str();
}

}  // namespace casp::vmpi::hb

#endif  // CASP_VMPI_SCHED
