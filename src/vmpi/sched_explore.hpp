// Schedule-space exploration driver for casp-verify.
//
// Runs one SPMD body many times under the deterministic scheduler:
//
//   random mode      N seeded schedules (seed, seed+1, …) — cheap broad
//                    sampling; the stage-(h) sweep uses 32.
//   systematic mode  CHESS-style bounded DFS: take a recorded trace, branch
//                    on every decision with every untried alternative, and
//                    prune branches whose preemption count would exceed the
//                    bound (default 2). Musuvathi & Qadeer's observation —
//                    most real concurrency bugs need very few preemptions —
//                    is what makes this tractable.
//
// Both modes can additionally sweep fault seeds, so fault-path interleavings
// (retry loops, crash teardown) get explored too. Every outcome carries the
// replayable schedule string; a flagged outcome's string reproduces the
// exact diagnostic via CASP_VMPI_SCHED="replay=<string>".
#pragma once

#ifdef CASP_VMPI_SCHED

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "vmpi/runtime.hpp"

namespace casp::vmpi {

struct ExploreOptions {
  int size = 2;
  /// Random mode: how many seeded schedules to run (seeds base_seed …
  /// base_seed + random_schedules - 1).
  int random_schedules = 32;
  std::uint64_t base_seed = 1;
  /// Systematic mode on top of the random sweep: DFS over replay prefixes,
  /// bounded by preemption_bound, capped at max_schedules total runs.
  bool systematic = false;
  int preemption_bound = 2;
  int max_schedules = 64;
  /// Fault plan swept alongside schedules. Unset = fault-free runs. Each
  /// entry of fault_seeds reruns every schedule with plan.seed = that seed;
  /// empty fault_seeds runs the plan as given (or fault-free when unset).
  std::optional<FaultPlan> faults;
  std::vector<std::uint64_t> fault_seeds;
  /// Virtual-clock deadline armed on every explored run, milliseconds
  /// (0 = none). Expiry surfaces as a flagged "deadline_exceeded" outcome —
  /// the budget is burned by scheduling decisions, not wall time, so the
  /// expiring interleavings replay exactly.
  std::int64_t deadline_ms = 0;
};

/// One explored schedule and what it produced.
struct ScheduleOutcome {
  std::string schedule;     ///< replayable string
  std::uint64_t fault_seed = 0;  ///< 0 = fault-free
  std::string failure_kind;  ///< FailureReport::kind, empty for clean runs
  std::string failure_what;
  std::vector<SchedFinding> findings;
  SchedTrace trace;

  /// True when the run surfaced a correctness verdict (analyzer findings,
  /// a deadlock, a checker abort) as opposed to running clean or dying of
  /// an intentionally injected fault.
  bool flagged() const;
};

struct ExploreResult {
  int schedules_run = 0;
  std::vector<ScheduleOutcome> flagged;
  bool clean() const { return flagged.empty(); }
  /// First flagged outcome whose failure kind or finding kinds include
  /// `kind`; nullptr when none does.
  const ScheduleOutcome* first_with(const std::string& kind) const;
};

/// Run one body under one explicit plan (building block and replay entry
/// point — `casp_verify --replay` is this with a parsed schedule string).
ScheduleOutcome run_schedule(int size, const std::function<void(Comm&)>& body,
                             const SchedPlan& plan,
                             const std::optional<FaultPlan>& faults,
                             std::uint64_t fault_seed,
                             std::int64_t deadline_ms = 0);

/// Full sweep per ExploreOptions. Stops early when the schedule budget is
/// exhausted; never throws on flagged runs (they land in `flagged`).
ExploreResult explore(const std::function<void(Comm&)>& body,
                      const ExploreOptions& options);

}  // namespace casp::vmpi

#endif  // CASP_VMPI_SCHED
