// Virtual job launcher: runs an SPMD function on p thread-backed ranks.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "obs/recorder.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/faults.hpp"
#include "vmpi/sched.hpp"
#include "vmpi/traffic.hpp"

namespace casp::vmpi {

/// The job ran past RunOptions::deadline_ms: the watchdog raised this on
/// the slowest rank's behalf and woke everyone else with Aborted. Classified
/// as "deadline_exceeded" (non-recoverable — the budget is spent).
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Structured classification of why a virtual job died: which rank failed
/// first, which traffic phase it was in, and what kind of fault killed it.
/// Built by vmpi::run for every failed job and either attached to the
/// RunResult (RunOptions::capture_failure) or implied by the rethrown
/// exception; the run report embeds it so `--report` JSON names the
/// failure instead of a bare abort.
struct FailureReport {
  /// Machine-readable class: "rank_crash", "permanent_crash",
  /// "retry_exhausted", "deadline_exceeded", "deadlock",
  /// "communicator_order_violation", "collective_mismatch", "message_leak",
  /// "memory_budget", "input_error", "invalid_argument",
  /// "schedule_violation" (casp-verify happens-before findings), or
  /// "exception". Every kind must appear in runtime.cpp's kKindTable
  /// (casp_lint: failure-kind-classified).
  std::string kind;
  /// First failing world rank; -1 for job-level failures (watchdog
  /// deadlock verdicts have no single culprit rank).
  int rank = -1;
  /// Traffic phase the failing rank was in (e.g. "A-Bcast"); empty for
  /// job-level failures.
  std::string phase;
  /// The underlying exception message.
  std::string what;

  /// One-line human-readable rendering (kind/rank/phase/what).
  std::string describe() const;
};

/// Launch-time knobs for a virtual job.
struct RunOptions {
  /// Fault-injection plan. Unset = parse CASP_VMPI_FAULTS from the
  /// environment (a disabled plan when that is unset too).
  std::optional<FaultPlan> faults;
  /// When true, an unrecoverable job error is returned as
  /// RunResult::failure (with every rank's recorders intact) instead of
  /// rethrown — the CLI/report path. When false (default), the first
  /// exception is rethrown as before, so callers' catch sites keep
  /// working.
  bool capture_failure = false;
  /// Wall-clock deadline for the whole job in milliseconds; 0 = none.
  /// Enforced cooperatively by the watchdog thread: past the deadline every
  /// rank is woken with vmpi::Aborted and the job classifies as
  /// "deadline_exceeded" (non-recoverable — more attempts cannot make the
  /// same budget fit). Under the deterministic scheduler (CASP_VMPI_SCHED
  /// plan active) the watchdog is off and the deadline is enforced against
  /// the scheduler's VIRTUAL clock instead — every scheduling decision
  /// advances virtual time by a fixed quantum, so deadline-expiry
  /// interleavings replay exactly (see Scheduler::arm_virtual_deadline).
  std::int64_t deadline_ms = 0;
#ifdef CASP_VMPI_SCHED
  /// casp-verify schedule plan. Unset = parse the CASP_VMPI_SCHED
  /// environment variable ("seed=<n>" or "replay=<schedule>"; absent means
  /// an ordinary free-running job). A disabled plan also runs free.
  std::optional<SchedPlan> sched;
#endif
};

/// Everything a finished virtual job reports back.
struct RunResult {
  int size = 0;
  /// Wall time of the whole job (launch to last join), seconds.
  double wall_seconds = 0.0;
  /// Per-rank observability recorders (timeline events, traffic ledger,
  /// timings, counters, memory high-water), indexed by rank. The `traffic`
  /// and `times` vectors below are convenience copies of the recorders'
  /// ledgers, kept for existing callers.
  std::vector<obs::Recorder> recorders;
  /// Per-rank traffic ledgers, indexed by rank.
  std::vector<TrafficStats> traffic;
  /// Per-rank named timings, indexed by rank.
  std::vector<TimeAccumulator> times;

  /// Set iff the job failed and RunOptions::capture_failure was true.
  std::optional<FailureReport> failure;
  bool failed() const { return failure.has_value(); }

#ifdef CASP_VMPI_SCHED
  /// Set iff the job ran under a casp-verify schedule plan: the replayable
  /// schedule string, the full decision trace (for systematic exploration)
  /// and the happens-before findings. Findings also surface as a
  /// "schedule_violation" failure unless an earlier error won.
  std::optional<SchedSummary> sched;
#endif

  TrafficSummary traffic_summary() const;
  /// Max over ranks of a named timer (the critical-path step time).
  double max_time(const std::string& name) const;
  /// All timer names seen on any rank.
  std::vector<std::string> time_names() const;
};

/// Run `body` on `size` ranks. Blocks until all ranks return. If any rank
/// throws, all blocked ranks are woken with vmpi::Aborted and — unless
/// options.capture_failure asks for a structured FailureReport instead —
/// the first exception is rethrown here.
RunResult run(int size, const std::function<void(Comm&)>& body,
              const RunOptions& options);
RunResult run(int size, const std::function<void(Comm&)>& body);

/// True iff the failure is one a relaunch can survive: the fault is
/// external to the program logic — a crashed rank ("rank_crash"), a link
/// that swallowed every retry ("retry_exhausted"), or the deadlock a
/// crashed peer leaves behind ("deadlock") — rather than a deterministic
/// bug (collective mismatch, bad input, budget exhaustion on all ranks)
/// that would recur identically on every attempt.
bool recoverable_failure(const FailureReport& report);

/// Knobs for the supervised restart loop.
struct SupervisorOptions {
  /// Fault plan for the first attempt. Unset = CASP_VMPI_FAULTS.
  std::optional<FaultPlan> faults;
  /// Upper bound on relaunches (not counting the first attempt).
  int max_restarts = 3;
  /// Capped exponential backoff between relaunches, mirroring the
  /// transport's retry_base_us/retry_cap_us: attempt k sleeps
  /// min(restart_backoff_base_us << k, restart_backoff_cap_us) before
  /// relaunching. 0 disables the wait (tests that sweep many restarts).
  std::int64_t restart_backoff_base_us = 1000;
  std::int64_t restart_backoff_cap_us = 100000;
  /// Deadline for the whole supervised chain (all attempts plus backoff
  /// waits), milliseconds; 0 = none. Each attempt runs under the remaining
  /// budget, and a chain that exhausts it classifies "deadline_exceeded".
  std::int64_t deadline_ms = 0;
};

/// Outcome of run_supervised: the final attempt's RunResult plus the
/// recovery history. The job body is responsible for fast-forwarding from
/// its newest checkpoint generation (see ckpt::Checkpointer) — the
/// supervisor only relaunches and disarms fired faults.
struct SupervisedResult {
  RunResult result;  ///< final attempt (successful or the one that gave up)
  int restarts = 0;  ///< relaunches actually performed
  int max_restarts = 0;  ///< the bound the supervisor ran under
  /// FailureReports of the attempts that were relaunched, in order.
  std::vector<FailureReport> recovered_failures;
  /// Wall-clock seconds burned by failed attempts (recovery overhead).
  double wasted_seconds = 0.0;
  /// Wall-clock microseconds MEASURED sleeping before each relaunch, in
  /// order (one entry per restart; surfaced in the report's "recovery"
  /// section). Timing-dependent — never part of deterministic evidence.
  std::vector<std::int64_t> backoff_us;
  /// The deterministic backoff *schedule*: the computed ladder value
  /// min(base << k, cap) each restart was asked to wait, independent of how
  /// long the sleep actually took. One entry per restart (0 when backoff is
  /// disabled). This is the half of the backoff evidence stable enough for
  /// JobReport::deterministic_json.
  std::vector<std::int64_t> backoff_plan_us;

  bool recovered() const { return restarts > 0 && !result.failed(); }
};

/// Run `body` under a supervisor: each attempt runs with capture_failure;
/// when the captured FailureReport is recoverable_failure() and the restart
/// budget allows, the already-fired fault is disarmed from the plan
/// (FaultPlan::disarmed) and the job relaunches — bodies that checkpoint
/// resume from their newest valid generation instead of recomputing.
/// Unrecoverable failures and budget exhaustion return the failed attempt
/// as-is (RunResult::failure set, never rethrown).
SupervisedResult run_supervised(int size,
                                const std::function<void(Comm&)>& body,
                                const SupervisorOptions& options);
SupervisedResult run_supervised(int size,
                                const std::function<void(Comm&)>& body);

}  // namespace casp::vmpi
