// Virtual job launcher: runs an SPMD function on p thread-backed ranks.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "obs/recorder.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/traffic.hpp"

namespace casp::vmpi {

/// Everything a finished virtual job reports back.
struct RunResult {
  int size = 0;
  /// Wall time of the whole job (launch to last join), seconds.
  double wall_seconds = 0.0;
  /// Per-rank observability recorders (timeline events, traffic ledger,
  /// timings, counters, memory high-water), indexed by rank. The `traffic`
  /// and `times` vectors below are convenience copies of the recorders'
  /// ledgers, kept for existing callers.
  std::vector<obs::Recorder> recorders;
  /// Per-rank traffic ledgers, indexed by rank.
  std::vector<TrafficStats> traffic;
  /// Per-rank named timings, indexed by rank.
  std::vector<TimeAccumulator> times;

  TrafficSummary traffic_summary() const;
  /// Max over ranks of a named timer (the critical-path step time).
  double max_time(const std::string& name) const;
  /// All timer names seen on any rank.
  std::vector<std::string> time_names() const;
};

/// Run `body` on `size` ranks. Blocks until all ranks return. If any rank
/// throws, all blocked ranks are woken with vmpi::Aborted and the first
/// exception is rethrown here.
RunResult run(int size, const std::function<void(Comm&)>& body);

}  // namespace casp::vmpi
