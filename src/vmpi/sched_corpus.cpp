#ifdef CASP_VMPI_SCHED

#include "vmpi/sched_corpus.hpp"

#include <cstddef>
#include <memory>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace casp::vmpi::corpus {

namespace {

// -- good programs ----------------------------------------------------------

void bcast_tree(Comm& c) {
  Payload data;
  if (c.rank() == 0) {
    std::vector<std::byte> bytes(64);
    for (std::size_t i = 0; i < bytes.size(); ++i)
      bytes[i] = static_cast<std::byte>(i);
    data = Payload::wrap(std::move(bytes));
  }
  Payload out = c.bcast_payload(0, std::move(data));
  CASP_CHECK(out.size() == 64);
  const std::span<const std::byte> v = out.view();
  for (std::size_t i = 0; i < v.size(); ++i)
    CASP_CHECK(v[i] == static_cast<std::byte>(i));
}

void pipeline_ibcast(Comm& c) {
  // Two overlapped broadcast stages, the SUMMA pipelining shape: both posted
  // before either completes, waits in program order on every rank.
  Payload in0;
  Payload in1;
  if (c.rank() == 0)
    in0 = Payload::wrap(std::vector<std::byte>(8, std::byte{0x11}));
  if (c.rank() == 1)
    in1 = Payload::wrap(std::vector<std::byte>(8, std::byte{0x22}));
  PendingBcast b0 = c.ibcast_payload(0, std::move(in0));
  PendingBcast b1 = c.ibcast_payload(1, std::move(in1));
  Payload r0 = c.bcast_wait(b0);
  Payload r1 = c.bcast_wait(b1);
  CASP_CHECK(r0.size() == 8 && r0.view()[0] == std::byte{0x11});
  CASP_CHECK(r1.size() == 8 && r1.view()[0] == std::byte{0x22});
}

void ckpt_consensus(Comm& c) {
  // Checkpoint-resume consensus: every rank proposes its newest complete
  // generation; all must agree on the minimum before fast-forwarding.
  const int local_gen = c.rank() == 0 ? 5 : c.rank() + 2;
  const int agreed = c.allreduce_min(local_gen);
  CASP_CHECK(agreed == 3);
  const std::vector<int> all = c.allgather_value(agreed);
  for (const int g : all) CASP_CHECK(g == 3);
}

void rebatch_consensus(Comm& c) {
  // Degradation consensus: if any rank sees memory pressure, all ranks must
  // take the rebatch branch together.
  const int pressure = c.rank() == 1 ? 1 : 0;
  const int any = c.allreduce_max(pressure);
  CASP_CHECK(any == 1);
  c.barrier();
}

void sole_owner_handoff(Comm& c) {
  // Good twin of sole_owner_race: the acquire-ordered sole-owner check in
  // release_or_copy synchronizes with the receiver's drop, so this must
  // stay clean on EVERY schedule — including the ones that flag the
  // relaxed variant.
  if (c.rank() == 0) {
    Payload p = Payload::wrap(std::vector<std::byte>(32, std::byte{0xab}));
    c.send_payload(1, 7, p);
    const std::vector<std::byte> mine = std::move(p).release_or_copy();
    CASP_CHECK(mine.size() == 32 && mine[0] == std::byte{0xab});
  } else {
    const Payload q = c.recv_payload(0, 7);
    CASP_CHECK(q.size() == 32 && q.view()[0] == std::byte{0xab});
  }
}

// -- known-bug programs -----------------------------------------------------

void crossed_tags(Comm& c) {
  // PR-1 deadlock reproducer: each rank waits on a tag the other never
  // sends. The scheduler reports this exactly (no watchdog sampling) with
  // a replayable schedule attached.
  if (c.rank() == 0) {
    (void)c.recv_payload(1, 1);
  } else {
    (void)c.recv_payload(0, 2);
  }
}

void sole_owner_race(Comm& c) {
  // PR-2 bug reintroduced: the sole-owner check runs relaxed, so on
  // schedules where rank 1 has already dropped its handle, rank 0 steals
  // the allocation without synchronizing with rank 1's reads. On schedules
  // where rank 1 still holds the handle, the copy path runs and nothing is
  // wrong — only exploration finds the bad interleaving.
  if (c.rank() == 0) {
    Payload p = Payload::wrap(std::vector<std::byte>(32, std::byte{0xab}));
    c.send_payload(1, 7, p);
    const std::vector<std::byte> mine =
        std::move(p).release_or_copy_relaxed();
    CASP_CHECK(mine.size() == 32 && mine[0] == std::byte{0xab});
  } else {
    const Payload q = c.recv_payload(0, 7);
    CASP_CHECK(q.size() == 32 && q.view()[0] == std::byte{0xab});
  }
}

void mutation_after_send(Comm& c) {
  // Sender flips a byte in place after the handle crossed the transport —
  // the receiver's zero-copy view races the write.
  if (c.rank() == 0) {
    Payload p = Payload::wrap(std::vector<std::byte>(16, std::byte{0x01}));
    c.send_payload(1, 9, p);
    std::byte* raw = p.unsafe_mutable_data();
    raw[0] = std::byte{0xff};
  } else {
    const Payload q = c.recv_payload(0, 9);
    CASP_CHECK(q.size() == 16);
    (void)q.view();
  }
}

void racing_sends(Comm& c) {
  // Ranks 1 and 2 send the same (dest, tag) with no happens-before order:
  // the mailbox disambiguates by source today, but any refactor to
  // wildcard receives would make message order schedule-dependent.
  if (c.rank() == 1 || c.rank() == 2) {
    c.send_value<int>(0, 7, c.rank());
  }
  if (c.rank() == 0) {
    const int a = c.recv_value<int>(1, 7);
    const int b = c.recv_value<int>(2, 7);
    CASP_CHECK(a == 1 && b == 2);
  }
}

Program ownership_leak_program() {
  // The payload crosses ranks through captured shared state instead of a
  // message — the zero-copy ownership discipline the analyzer enforces.
  auto slot = std::make_shared<Payload>();
  Program p;
  p.name = "ownership_leak";
  p.size = 2;
  p.buggy = true;
  p.expected = "payload_ownership";
  p.body = [slot](Comm& c) {
    if (c.rank() == 0)
      *slot = Payload::wrap(std::vector<std::byte>(8, std::byte{0x5a}));
    c.barrier();
    if (c.rank() == 1)
      CASP_CHECK(slot->size() == 8 && slot->view()[0] == std::byte{0x5a});
    c.barrier();
  };
  return p;
}

/// Deadline-budget program: a correct but long ping-pong whose decision
/// count always outruns the 1 ms virtual budget (10 scheduling decisions at
/// 100 virtual us each). Every schedule must flag "deadline_exceeded" — the
/// deterministic analogue of a tenant blowing its JobSpec::deadline_ms.
Program deadline_budget_program() {
  Program p;
  p.name = "deadline_budget";
  p.size = 2;
  p.buggy = true;
  p.expected = "deadline_exceeded";
  p.deadline_ms = 1;
  p.body = [](Comm& c) {
    int token = 0;
    for (int round = 0; round < 16; ++round) {
      if (c.rank() == 0) {
        c.send_value<int>(1, 900 + round, token);
        token = c.recv_value<int>(1, 940 + round);
      } else {
        token = c.recv_value<int>(0, 900 + round) + 1;
        c.send_value<int>(0, 940 + round, token);
      }
    }
  };
  return p;
}

Program make(std::string name, int size, bool buggy, std::string expected,
             void (*body)(Comm&)) {
  Program p;
  p.name = std::move(name);
  p.size = size;
  p.buggy = buggy;
  p.expected = std::move(expected);
  p.body = body;
  return p;
}

}  // namespace

std::vector<Program> programs() {
  std::vector<Program> out;
  out.push_back(make("bcast_tree", 4, false, "", &bcast_tree));
  out.push_back(make("pipeline_ibcast", 4, false, "", &pipeline_ibcast));
  out.push_back(make("ckpt_consensus", 3, false, "", &ckpt_consensus));
  out.push_back(make("rebatch_consensus", 3, false, "", &rebatch_consensus));
  out.push_back(make("sole_owner_handoff", 2, false, "", &sole_owner_handoff));
  out.push_back(make("crossed_tags", 2, true, "deadlock", &crossed_tags));
  out.push_back(
      make("sole_owner_race", 2, true, "sole_owner_race", &sole_owner_race));
  out.push_back(make("mutation_after_send", 2, true, "mutation_after_send",
                     &mutation_after_send));
  out.push_back(make("racing_sends", 3, true, "racing_send", &racing_sends));
  out.push_back(ownership_leak_program());
  out.push_back(deadline_budget_program());
  return out;
}

Program find(const std::string& name) {
  std::vector<Program> all = programs();
  for (Program& p : all) {
    if (p.name == name) return std::move(p);
  }
  std::ostringstream os;
  os << "unknown corpus program \"" << name << "\"; valid names:";
  for (const Program& p : all) os << " " << p.name;
  throw std::invalid_argument(os.str());
}

}  // namespace casp::vmpi::corpus

#endif  // CASP_VMPI_SCHED
