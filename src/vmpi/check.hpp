// Collective-correctness checking for the virtual runtime — the MUST-style
// analog for vmpi.
//
// Real-MPI correctness tools (MUST, Marmot, Intel ITAC) intercept PMPI to
// verify that every rank of a communicator executes the same sequence of
// collectives with compatible arguments. Our runtime is not MPI, so it gets
// the equivalent built in: when compiled with CASP_VMPI_CHECK, every
// collective entry stamps an (op, sequence-number, root, payload-length)
// fingerprint into the existing message headers. A receiver that is inside
// a collective and matches a message carrying a different fingerprint
// aborts the whole virtual job with a per-rank diagnostic instead of
// deadlocking or silently corrupting data. Mis-orderings that manifest as
// a stall instead of a mismatched message are caught by the deadlock
// watchdog in vmpi::run, which dumps every rank's pending wait and recent
// collective history.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace casp::vmpi {

/// Which collective a rank is currently executing. kNone marks plain
/// point-to-point traffic, which the checker never second-guesses.
enum class CollectiveOp : std::uint8_t {
  kNone = 0,
  kBarrier,
  kBcast,
  kReduce,
  kAllgather,
  kAlltoall,
  kSplit,
  kSparseExchange,
};

const char* collective_op_name(CollectiveOp op);

/// Fingerprint of one collective call site, stamped into every message the
/// call sends. `seq` counts collective entries per communicator (nested
/// collectives — e.g. the broadcast inside allreduce — count too, so the
/// sequence is identical on every rank of a correct program). `payload` is
/// the byte length the caller contributed; it is compared across ranks only
/// for ops whose contract requires equal lengths (allreduce).
struct CollectiveStamp {
  CollectiveOp op = CollectiveOp::kNone;
  std::uint64_t seq = 0;
  std::int32_t root = -1;
  std::uint64_t payload = 0;
};

/// "bcast #3 (root 2)" / "allreduce #7 (16 bytes)" — for diagnostics.
std::string describe_stamp(const CollectiveStamp& stamp);

/// Thrown (and propagated out of vmpi::run) when two ranks of one
/// communicator disagree on which collective is executing: mismatched op
/// order, mismatched roots, cross-rank payload divergence, or collective
/// traffic left unconsumed at job end.
class CollectiveMismatch : public std::logic_error {
 public:
  explicit CollectiveMismatch(const std::string& what);
};

/// Thrown out of vmpi::run when the watchdog finds every live rank blocked
/// with no deliverable message — the virtual job can never make progress.
class DeadlockDetected : public std::runtime_error {
 public:
  explicit DeadlockDetected(const std::string& what);
};

/// Thrown out of vmpi::run when user-tag (tag >= 0) point-to-point messages
/// are still unconsumed at job end and the sender did not mark them
/// fire-and-forget — a send whose matching receive never ran.
class MessageLeak : public std::logic_error {
 public:
  explicit MessageLeak(const std::string& what);
};

/// Thrown out of vmpi::run when the watchdog finds the stall is not a
/// generic deadlock but a communicator-lifetime bug: some ranks are blocked
/// in a collective on a parent communicator while others are blocked in a
/// collective on one of its split children — i.e. the ranks interleaved
/// parent and child collectives in divergent program orders. A logic error
/// (the program is wrong, not the environment), diagnosed by name instead
/// of the raw deadlock dump.
class CommunicatorOrderViolation : public std::logic_error {
 public:
  explicit CommunicatorOrderViolation(const std::string& what);
};

}  // namespace casp::vmpi
