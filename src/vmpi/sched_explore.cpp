#ifdef CASP_VMPI_SCHED

#include "vmpi/sched_explore.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace casp::vmpi {

namespace {

constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

std::string encode_prefix(const std::vector<int>& choices) {
  std::string out;
  out.reserve(choices.size());
  for (const int c : choices) {
    const std::size_t i = std::min<std::size_t>(
        static_cast<std::size_t>(c), sizeof(kDigits) - 2);
    out.push_back(kDigits[i]);
  }
  return out;
}

}  // namespace

bool ScheduleOutcome::flagged() const {
  if (!findings.empty()) return true;
  if (failure_kind.empty()) return false;
  // Deaths of intentionally injected faults are sweep noise, not verdicts;
  // everything else (deadlock, schedule_violation, checker aborts, user
  // assertions) is a flag.
  return failure_kind != "rank_crash" && failure_kind != "retry_exhausted" &&
         failure_kind != "memory_budget";
}

const ScheduleOutcome* ExploreResult::first_with(
    const std::string& kind) const {
  for (const ScheduleOutcome& o : flagged) {
    if (o.failure_kind == kind) return &o;
    for (const SchedFinding& f : o.findings) {
      if (f.kind == kind) return &o;
    }
  }
  return nullptr;
}

ScheduleOutcome run_schedule(int size,
                             const std::function<void(Comm&)>& body,
                             const SchedPlan& plan,
                             const std::optional<FaultPlan>& faults,
                             std::uint64_t fault_seed,
                             std::int64_t deadline_ms) {
  RunOptions options;
  options.capture_failure = true;
  options.sched = plan;
  options.deadline_ms = deadline_ms;  // virtual clock under a sched plan
  if (faults.has_value()) {
    FaultPlan fp = *faults;
    if (fault_seed != 0) fp.seed = fault_seed;
    options.faults = fp;
  } else {
    // Explicitly fault-free: the sweep must not inherit CASP_VMPI_FAULTS
    // from the environment, or schedules would stop being reproducible.
    options.faults = FaultPlan{};
  }
  const RunResult rr = run(size, body, options);
  ScheduleOutcome out;
  out.fault_seed = fault_seed;
  if (rr.sched.has_value()) {
    out.schedule = rr.sched->schedule;
    out.trace = rr.sched->trace;
    out.findings = rr.sched->findings;
  }
  if (rr.failure.has_value()) {
    out.failure_kind = rr.failure->kind;
    out.failure_what = rr.failure->what;
  }
  return out;
}

ExploreResult explore(const std::function<void(Comm&)>& body,
                      const ExploreOptions& options) {
  ExploreResult result;
  const auto record = [&result](ScheduleOutcome outcome) {
    ++result.schedules_run;
    if (outcome.flagged()) result.flagged.push_back(std::move(outcome));
  };
  const auto budget_left = [&result, &options]() {
    return result.schedules_run < options.max_schedules;
  };

  // Random sweep: every seeded schedule × every fault seed.
  std::vector<std::uint64_t> fault_seeds = options.fault_seeds;
  if (fault_seeds.empty()) fault_seeds.push_back(0);
  for (const std::uint64_t fs : fault_seeds) {
    for (int i = 0; i < options.random_schedules && budget_left(); ++i) {
      record(run_schedule(
          options.size, body,
          SchedPlan::seeded(options.base_seed + static_cast<std::uint64_t>(i)),
          options.faults, fs, options.deadline_ms));
    }
  }

  if (!options.systematic) return result;

  // Systematic mode (fault-free so traces depend only on the prefix): DFS
  // over replay prefixes. Each run's recorded trace yields the digit string
  // actually taken; branching on decision i with an untried alternative
  // produces the prefix digits[0..i) + [alt]. A branch is pruned when its
  // preemption count would exceed the bound — the CHESS insight that real
  // bugs need very few preemptions keeps this exhaustive-in-practice.
  std::set<std::string> tried;
  std::vector<std::vector<int>> stack;
  stack.push_back({});  // the non-preemptive baseline schedule
  tried.insert("");
  while (!stack.empty() && budget_left()) {
    const std::vector<int> prefix = std::move(stack.back());
    stack.pop_back();
    SchedPlan plan;
    plan.mode = SchedPlan::Mode::kReplay;
    plan.replay_size = options.size;
    plan.choices = prefix;
    ScheduleOutcome outcome = run_schedule(options.size, body, plan,
                                           std::nullopt, 0,
                                           options.deadline_ms);
    const std::vector<SchedDecision>& ds = outcome.trace.decisions;
    std::vector<int> digits(ds.size(), 0);
    std::vector<int> preemptions_before(ds.size() + 1, 0);
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const auto it =
          std::find(ds[i].runnable.begin(), ds[i].runnable.end(),
                    ds[i].chosen);
      digits[i] = static_cast<int>(it - ds[i].runnable.begin());
      preemptions_before[i + 1] =
          preemptions_before[i] + (ds[i].preemption() ? 1 : 0);
    }
    for (std::size_t i = prefix.size(); i < ds.size(); ++i) {
      for (int alt = 0; alt < static_cast<int>(ds[i].runnable.size());
           ++alt) {
        if (alt == digits[i]) continue;
        const bool alt_preempts =
            ds[i].prev >= 0 &&
            ds[i].runnable[static_cast<std::size_t>(alt)] != ds[i].prev &&
            std::find(ds[i].runnable.begin(), ds[i].runnable.end(),
                      ds[i].prev) != ds[i].runnable.end();
        if (preemptions_before[i] + (alt_preempts ? 1 : 0) >
            options.preemption_bound)
          continue;
        std::vector<int> next(digits.begin(),
                              digits.begin() + static_cast<std::ptrdiff_t>(i));
        next.push_back(alt);
        if (tried.insert(encode_prefix(next)).second)
          stack.push_back(std::move(next));
      }
    }
    record(std::move(outcome));
  }
  return result;
}

}  // namespace casp::vmpi

#endif  // CASP_VMPI_SCHED
