#include "vmpi/check.hpp"

#include <sstream>

namespace casp::vmpi {

const char* collective_op_name(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kNone:
      return "point-to-point";
    case CollectiveOp::kBarrier:
      return "barrier";
    case CollectiveOp::kBcast:
      return "bcast";
    case CollectiveOp::kReduce:
      return "allreduce";
    case CollectiveOp::kAllgather:
      return "allgather";
    case CollectiveOp::kAlltoall:
      return "alltoall";
    case CollectiveOp::kSplit:
      return "split";
    case CollectiveOp::kSparseExchange:
      return "sparse-exchange";
  }
  return "unknown";
}

std::string describe_stamp(const CollectiveStamp& stamp) {
  std::ostringstream os;
  os << collective_op_name(stamp.op);
  if (stamp.op == CollectiveOp::kNone) return os.str();
  os << " #" << stamp.seq;
  if (stamp.root >= 0) os << " (root " << stamp.root << ")";
  if (stamp.op == CollectiveOp::kReduce)
    os << " [" << stamp.payload << " bytes]";
  return os.str();
}

CollectiveMismatch::CollectiveMismatch(const std::string& what)
    : std::logic_error(what) {}

DeadlockDetected::DeadlockDetected(const std::string& what)
    : std::runtime_error(what) {}

MessageLeak::MessageLeak(const std::string& what) : std::logic_error(what) {}

CommunicatorOrderViolation::CommunicatorOrderViolation(const std::string& what)
    : std::logic_error(what) {}

}  // namespace casp::vmpi
