// Vector-clock happens-before analysis for the casp-verify plane.
//
// Under a scheduled run (CASP_VMPI_SCHED + an active SchedPlan) every vmpi
// message and collective tree hop carries a vector-clock snapshot, and every
// Payload refcount transition / MemoryTracker commit reports through the
// schedhook bridge. This analyzer folds those events into per-rank vector
// clocks and flags logical races that no single interleaving can prove or
// disprove on its own:
//
//   sole_owner_race      release_or_copy stole a buffer whose other owners'
//                        releases are not happens-before ordered against the
//                        steal (the PR-2 relaxed sole-owner check, kept as
//                        release_or_copy_relaxed for the known-bug corpus).
//   mutation_after_send  bytes mutated in place after the buffer was handed
//                        to the transport, concurrent with a receiver's use.
//   payload_ownership    a rank acquired or read a buffer that was never
//                        handed to it through a message — zero-copy data
//                        crossed ranks outside the transport.
//   use_after_release    a rank read a buffer after another rank reclaimed
//                        the allocation for mutation, without ordering.
//   racing_send          two happens-before-concurrent sends from different
//                        ranks target the same (dest, user tag) — receive
//                        matching disambiguates only by source, so the
//                        arrival order is schedule-dependent.
//
// The analyzer is logical: it reasons about the synchronization the program
// actually has (message edges + acquire/release refcount edges), so one
// explored schedule in which both conflicting events occur is enough to
// flag a race, even if that schedule happened to execute them "safely".
//
// All entry points run on the rank thread that holds the scheduler token,
// so the analyzer is single-threaded by construction and needs no locks.
#pragma once

#ifdef CASP_VMPI_SCHED

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/schedhook.hpp"

namespace casp::vmpi {

/// One analyzer verdict. `kind` is machine-readable (see header comment);
/// `rank` is the world rank whose event completed the race (-1 for
/// job-level findings); `detail` is the human-readable diagnostic line.
struct SchedFinding {
  std::string kind;
  int rank = -1;
  std::string detail;
};

namespace hb {

using VectorClock = std::vector<std::uint64_t>;

/// a ≤ b componentwise (a happens-before-or-equals b).
bool clock_leq(const VectorClock& a, const VectorClock& b);
/// a := join(a, b) (componentwise max).
void clock_join(VectorClock& a, const VectorClock& b);

/// The happens-before engine. Owned by SchedState; one per scheduled run.
class Analyzer {
 public:
  explicit Analyzer(int size);

  // -- Message edges -------------------------------------------------------

  /// Sender-side: snapshot the sender's clock, remember the payload buffer,
  /// run the racing-send check for user tags. Returns the message id the
  /// transport stamps into the Message (0 = untracked empty payload is
  /// still tracked; every send gets an id).
  std::uint64_t on_send(int rank, std::uint64_t context, int dest_world,
                        int tag, const void* buffer, std::size_t bytes);
  /// Receiver-side: join the message clock into the receiver and grant the
  /// receiver ownership of the carried buffer.
  void on_recv(int rank, std::uint64_t msg_id);

  // -- Payload / tracker events (via the schedhook bridge) -----------------

  void on_event(int rank, schedhook::Event event, const void* object,
                long value);

  // -- Deadlock annotation -------------------------------------------------

  /// One clause about a pending wait: was a matching message never sent, or
  /// already sent and consumed by an earlier receive (lost wakeup)?
  std::string describe_wait(std::uint64_t context, int src_world,
                            int dest_world, int tag) const;

  const std::vector<SchedFinding>& findings() const { return findings_; }

 private:
  struct BufferState {
    long live = 0;
    /// Ranks allowed to touch the buffer: the creator plus every rank that
    /// received it through a message. Foreign buffers (first seen outside a
    /// rank thread, e.g. created on the launcher thread) skip the
    /// ownership check.
    std::set<int> owners;
    bool foreign = false;
    bool transported = false;
    /// Join of every release event's clock — what an acquire-ordered
    /// sole-owner observation synchronizes with.
    VectorClock release_clock;
    bool has_release = false;
    /// Last event clock per rank that ever touched the buffer.
    std::map<int, VectorClock> last_event;
    /// Set when the allocation was reclaimed for mutation (steal/mutate).
    bool reclaimed = false;
    VectorClock reclaim_clock;
    int reclaimer = -1;
  };

  struct MessageRecord {
    VectorClock clock;
    const void* buffer = nullptr;
    std::uint64_t context = 0;
    int dest_world = -1;
    int src_world = -1;
    int tag = 0;
  };

  /// Per (context, dest, tag) pending user-tag sends, for the racing-send
  /// check; entries leave on receive.
  struct PendingSend {
    int src_world;
    std::uint64_t msg_id;
    VectorClock clock;
  };

  /// Sent/consumed counters per exact wait triple, for lost-wakeup
  /// classification in deadlock reports.
  struct TripleStats {
    std::uint64_t sent = 0;
    std::uint64_t consumed = 0;
  };

  void bump(int rank);
  BufferState& buffer_state(int rank, const void* buffer, bool creating);
  void add_finding(const std::string& kind, int rank,
                   const std::string& detail);

  int size_;
  std::vector<VectorClock> clocks_;
  std::map<const void*, BufferState> buffers_;
  std::map<std::uint64_t, MessageRecord> messages_;
  std::uint64_t next_msg_id_ = 1;
  std::map<std::tuple<std::uint64_t, int, int>, std::vector<PendingSend>>
      pending_user_sends_;
  std::map<std::tuple<std::uint64_t, int, int, int>, TripleStats> triples_;
  std::vector<SchedFinding> findings_;
  std::set<std::string> finding_keys_;  ///< dedupe (kind + detail core)
};

}  // namespace hb
}  // namespace casp::vmpi

#endif  // CASP_VMPI_SCHED
