#include "vmpi/faults.hpp"

#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "vmpi/comm.hpp"

namespace casp::vmpi {

namespace {

/// splitmix64 finalizer: the standard cheap 64-bit mixer. Decisions hash
/// (seed, rank, op, attempt, salt) through it, so they are independent
/// draws yet exactly reproducible.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) from the decision stream.
double uniform(std::uint64_t seed, std::uint64_t salt, int rank,
               std::uint64_t index, int attempt) {
  std::uint64_t h = mix(seed ^ salt);
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<unsigned>(rank)) + 1));
  h = mix(h ^ index);
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<unsigned>(attempt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSendSalt = 0x73656e64ULL;    // "send"
constexpr std::uint64_t kAllocSalt = 0x616c6c6fULL;   // "allo"
constexpr std::uint64_t kCorruptSalt = 0x63727074ULL; // "crpt"

[[noreturn]] void bad_spec(const std::string& detail) {
  throw InvalidArgument("CASP_VMPI_FAULTS: " + detail);
}

double parse_double(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || pos == 0)
    bad_spec("bad value '" + value + "' for " + key);
  return v;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || pos == 0)
    bad_spec("bad value '" + value + "' for " + key);
  return v;
}

}  // namespace

int RetryPolicy::backoff_us(int attempt) const {
  // min(base << attempt, cap) without shift overflow.
  long long us = base_delay_us;
  for (int i = 0; i < attempt && us < cap_delay_us; ++i) us *= 2;
  if (us > cap_delay_us) us = cap_delay_us;
  return static_cast<int>(us);
}

bool FaultPlan::enabled() const {
  return send_fail > 0.0 || alloc_fail > 0.0 || corrupt_prob > 0.0 ||
         crash_rank >= 0 || perm_crash_rank >= 0 ||
         (delay_us > 0 && delay_every > 0);
}

bool FaultPlan::send_attempt_fails(int rank, std::uint64_t op,
                                   int attempt) const {
  if (send_fail <= 0.0) return false;
  return uniform(seed, kSendSalt, rank, op, attempt) < send_fail;
}

bool FaultPlan::send_attempt_corrupts(int rank, std::uint64_t op,
                                      int attempt) const {
  if (corrupt_prob <= 0.0) return false;
  return uniform(seed, kCorruptSalt, rank, op, attempt) < corrupt_prob;
}

bool FaultPlan::alloc_fails(int rank, std::uint64_t alloc_index) const {
  if (alloc_fail <= 0.0) return false;
  return uniform(seed, kAllocSalt, rank, alloc_index, 0) < alloc_fail;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::set<std::string> seen;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      bad_spec("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key.empty()) bad_spec("empty key in '" + item + "'");
    if (!seen.insert(key).second)
      bad_spec("duplicate key '" + key + "' (each key may appear once)");
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_int(key, value));
    } else if (key == "send_fail") {
      plan.send_fail = parse_double(key, value);
    } else if (key == "alloc_fail") {
      plan.alloc_fail = parse_double(key, value);
    } else if (key == "delay_us") {
      plan.delay_us = static_cast<int>(parse_int(key, value));
    } else if (key == "delay_every") {
      plan.delay_every = static_cast<int>(parse_int(key, value));
    } else if (key == "delay_rank") {
      plan.delay_rank = static_cast<int>(parse_int(key, value));
    } else if (key == "crash_rank") {
      plan.crash_rank = static_cast<int>(parse_int(key, value));
    } else if (key == "crash_op") {
      plan.crash_op = static_cast<std::uint64_t>(parse_int(key, value));
    } else if (key == "perm_crash_rank") {
      plan.perm_crash_rank = static_cast<int>(parse_int(key, value));
    } else if (key == "perm_crash_op") {
      plan.perm_crash_op = static_cast<std::uint64_t>(parse_int(key, value));
    } else if (key == "corrupt_prob") {
      plan.corrupt_prob = parse_double(key, value);
    } else if (key == "retry_max") {
      plan.retry.max_attempts = static_cast<int>(parse_int(key, value));
    } else if (key == "retry_base_us") {
      plan.retry.base_delay_us = static_cast<int>(parse_int(key, value));
    } else if (key == "retry_cap_us") {
      plan.retry.cap_delay_us = static_cast<int>(parse_int(key, value));
    } else {
      bad_spec("unknown key '" + key + "'");
    }
  }
  if (plan.send_fail < 0.0 || plan.send_fail > 1.0)
    bad_spec("send_fail must be in [0, 1]");
  if (plan.alloc_fail < 0.0 || plan.alloc_fail > 1.0)
    bad_spec("alloc_fail must be in [0, 1]");
  if (plan.delay_us < 0) bad_spec("delay_us must be >= 0");
  if (plan.delay_every < 0) bad_spec("delay_every must be >= 0");
  if (plan.delay_rank < -1) bad_spec("delay_rank must be >= -1");
  if (plan.crash_rank < -1) bad_spec("crash_rank must be >= -1");
  if (plan.perm_crash_rank < -1) bad_spec("perm_crash_rank must be >= -1");
  if (plan.corrupt_prob < 0.0 || plan.corrupt_prob > 1.0)
    bad_spec("corrupt_prob must be in [0, 1]");
  if (plan.retry.max_attempts < 1) bad_spec("retry_max must be >= 1");
  if (plan.retry.base_delay_us < 0) bad_spec("retry_base_us must be >= 0");
  if (plan.retry.cap_delay_us < plan.retry.base_delay_us)
    bad_spec("retry_cap_us must be >= retry_base_us");
  if (plan.crash_op < 1) bad_spec("crash_op is 1-based");
  return plan;
}

FaultPlan FaultPlan::disarmed(const std::string& failure_kind) const {
  FaultPlan plan = *this;
  if (failure_kind == "rank_crash" || failure_kind == "deadlock") {
    // The crash already fired (a deadlock verdict here means the crashed
    // rank's peers were left blocked); the relaunched attempt runs without
    // it, exactly like a failed node replaced by a spare.
    plan.crash_rank = -1;
  } else if (failure_kind == "retry_exhausted") {
    plan.send_fail = 0.0;
    plan.corrupt_prob = 0.0;
  } else if (failure_kind == "permanent_crash") {
    // Only meaningful when the relaunch excludes the dead rank (the service's
    // shrunk-grid resume); a same-grid relaunch would just die again, which
    // is why "permanent_crash" is classified non-recoverable.
    plan.perm_crash_rank = -1;
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("CASP_VMPI_FAULTS");
  if (spec == nullptr || *spec == '\0') return FaultPlan{};
  return parse(spec);
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (send_fail > 0.0) os << ";send_fail=" << send_fail;
  if (alloc_fail > 0.0) os << ";alloc_fail=" << alloc_fail;
  if (delay_us > 0 && delay_every > 0) {
    os << ";delay_us=" << delay_us << ";delay_every=" << delay_every;
    if (delay_rank >= 0) os << ";delay_rank=" << delay_rank;
  }
  if (crash_rank >= 0)
    os << ";crash_rank=" << crash_rank << ";crash_op=" << crash_op;
  if (perm_crash_rank >= 0)
    os << ";perm_crash_rank=" << perm_crash_rank
       << ";perm_crash_op=" << perm_crash_op;
  if (corrupt_prob > 0.0) os << ";corrupt_prob=" << corrupt_prob;
  os << ";retry_max=" << retry.max_attempts
     << ";retry_base_us=" << retry.base_delay_us
     << ";retry_cap_us=" << retry.cap_delay_us;
  return os.str();
}

namespace detail {

FaultState::FaultState(FaultPlan plan, int size)
    : plan_(plan), per_rank_(static_cast<std::size_t>(size)) {}

std::uint64_t FaultState::enter_op(int rank, obs::Recorder& rec) {
  const std::uint64_t op =
      per_rank_[static_cast<std::size_t>(rank)].ops.fetch_add(
          1, std::memory_order_relaxed) +
      1;
  if (plan_.delays_at(rank, op)) {
    rec.add_counter("vmpi.faults_injected", 1);
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
  }
  if (plan_.crashes_at(rank, op)) {
    rec.add_counter("vmpi.faults_injected", 1);
    std::ostringstream os;
    os << "injected crash: rank " << rank << " killed at vmpi op " << op
       << " (fault plan " << plan_.describe() << ")";
    throw InjectedRankCrash(os.str());
  }
  if (plan_.perm_crashes_at(rank, op)) {
    rec.add_counter("vmpi.faults_injected", 1);
    std::ostringstream os;
    os << "injected permanent crash: rank " << rank
       << " dead for good at vmpi op " << op << " (fault plan "
       << plan_.describe() << ")";
    throw PermanentRankCrash(os.str());
  }
  return op;
}

void FaultState::check_send(int rank, std::uint64_t op, int attempt,
                            obs::Recorder& rec) {
  if (!plan_.send_attempt_fails(rank, op, attempt)) return;
  rec.add_counter("vmpi.faults_injected", 1);
  std::ostringstream os;
  os << "injected transient send failure: rank " << rank << ", vmpi op "
     << op << ", attempt " << (attempt + 1);
  throw TransientCommError(os.str());
}

void FaultState::check_corrupt(int rank, std::uint64_t op, int attempt,
                               obs::Recorder& rec) {
  if (!plan_.send_attempt_corrupts(rank, op, attempt)) return;
  rec.add_counter("vmpi.faults_injected", 1);
  rec.add_counter("vmpi.checksum_rejects", 1);
  std::ostringstream os;
  os << "payload checksum mismatch (injected corruption): rank " << rank
     << ", vmpi op " << op << ", attempt " << (attempt + 1);
  throw TransientCommError(os.str());
}

std::uint64_t FaultState::next_alloc(int rank) {
  return per_rank_[static_cast<std::size_t>(rank)].allocs.fetch_add(
             1, std::memory_order_relaxed) +
         1;
}

void FaultState::backoff(int attempt) const {
  std::this_thread::sleep_for(
      std::chrono::microseconds(plan_.retry.backoff_us(attempt)));
}

}  // namespace detail

void arm_alloc_faults(Comm& comm, MemoryTracker& tracker) {
  detail::FaultState* faults = comm.fault_state();
  if (faults == nullptr || faults->plan().alloc_fail <= 0.0) return;
  const int rank = comm.world_rank();
  obs::Recorder* rec = &comm.recorder();
  tracker.set_failure_hook([faults, rank, rec](Bytes, const char*) {
    const std::uint64_t index = faults->next_alloc(rank);
    if (!faults->plan().alloc_fails(rank, index)) return false;
    rec->add_counter("vmpi.faults_injected", 1);
    return true;
  });
}

}  // namespace casp::vmpi
