// Communication instrumentation.
//
// Every point-to-point message the runtime delivers is counted against the
// sender's current *phase* (e.g. "A-Bcast", "AllToAll-Fiber"). Because the
// collectives are implemented over point-to-point with the standard tree /
// pairwise algorithms, the recorded message counts carry the same latency
// structure (lg p broadcast rounds, l-1 all-to-all partners) the paper's
// Table II analyzes — so the cost model can convert counts to modeled time
// at any scale.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.hpp"

namespace casp::vmpi {

struct PhaseTraffic {
  std::uint64_t messages = 0;
  /// Logical bytes: what the dense Table II accounting charges. For plain
  /// sends this equals `shipped`; the sparse exchange plane additionally
  /// charges the dense-equivalent volume here (via record_unshipped) so the
  /// ledger exposes measured savings as `bytes - shipped`.
  Bytes bytes = 0;
  /// Bytes that actually crossed the wire. Invariant: shipped <= bytes.
  Bytes shipped = 0;

  PhaseTraffic& operator+=(const PhaseTraffic& other) {
    messages += other.messages;
    bytes += other.bytes;
    shipped += other.shipped;
    return *this;
  }
};

/// Per-rank traffic ledger. Not thread-safe: each rank owns one.
///
/// Two views of the same sends: the per-phase totals (the Table II
/// counters, unchanged semantics) and a per-phase destination breakdown
/// keyed by the receiver's *world* rank — the rank×rank traffic matrix the
/// run report renders. Both are charged in the same record_send call, so
/// the matrix's row sums reproduce the phase totals exactly.
class TrafficStats {
 public:
  void set_phase(std::string phase) { phase_ = std::move(phase); }
  const std::string& phase() const { return phase_; }

  /// `dest_world` is the receiver's world rank, or -1 when the caller has
  /// no destination to attribute (never the case for real sends).
  void record_send(Bytes bytes, int dest_world = -1) {
    PhaseTraffic& t = per_phase_[phase_];
    ++t.messages;
    t.bytes += bytes;
    t.shipped += bytes;
    if (dest_world >= 0) {
      PhaseTraffic& d = per_dest_[phase_][dest_world];
      ++d.messages;
      d.bytes += bytes;
      d.shipped += bytes;
    }
  }

  /// Charge logical-only bytes: volume the dense path *would* have sent but
  /// the sparse exchange avoided. No message and no shipped bytes are
  /// counted, so dense-path ledgers (which never call this) are unchanged
  /// and `shipped <= bytes` holds per phase and per destination.
  void record_unshipped(Bytes logical, int dest_world = -1) {
    per_phase_[phase_].bytes += logical;
    if (dest_world >= 0) per_dest_[phase_][dest_world].bytes += logical;
  }

  const std::map<std::string, PhaseTraffic>& per_phase() const {
    return per_phase_;
  }
  /// phase -> (dest world rank -> traffic).
  const std::map<std::string, std::map<int, PhaseTraffic>>& per_dest() const {
    return per_dest_;
  }
  PhaseTraffic total() const {
    PhaseTraffic sum;
    for (const auto& [name, t] : per_phase_) sum += t;
    return sum;
  }
  PhaseTraffic get(const std::string& phase) const {
    auto it = per_phase_.find(phase);
    return it == per_phase_.end() ? PhaseTraffic{} : it->second;
  }
  void clear() {
    per_phase_.clear();
    per_dest_.clear();
  }

 private:
  std::string phase_ = "default";
  std::map<std::string, PhaseTraffic> per_phase_;
  std::map<std::string, std::map<int, PhaseTraffic>> per_dest_;
};

/// Merge of per-rank ledgers produced by Runtime::run.
struct TrafficSummary {
  /// Sum over ranks, per phase.
  std::map<std::string, PhaseTraffic> total_per_phase;
  /// Max over ranks, per phase (the critical-path view the paper plots).
  std::map<std::string, PhaseTraffic> max_per_phase;

  PhaseTraffic total() const {
    PhaseTraffic sum;
    for (const auto& [name, t] : total_per_phase) sum += t;
    return sum;
  }
};

/// RAII phase label for a TrafficStats ledger.
class ScopedPhase {
 public:
  ScopedPhase(TrafficStats& stats, std::string phase)
      : stats_(stats), saved_(stats.phase()) {
    stats_.set_phase(std::move(phase));
  }
  ~ScopedPhase() { stats_.set_phase(saved_); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  TrafficStats& stats_;
  std::string saved_;
};

}  // namespace casp::vmpi
