// Virtual message-passing communicator — the library's MPI substitute.
//
// Ranks are threads inside one OS process, but the programming model is
// pure distributed memory: messages travel through per-rank mailboxes and
// receivers can never observe a sender's later writes. Data is carried as
// refcounted immutable Payload handles (common/payload.hpp): a send copies
// the bytes once at the API boundary, and collectives forward the *handle*
// through every tree hop instead of re-copying — while TrafficStats still
// charges the full logical bytes per hop, so the message/byte counts match
// the latency/bandwidth terms in the paper's Table II exactly. Collectives
// are built over point-to-point with the textbook algorithms (binomial-tree
// broadcast/reduce, dissemination barrier, pairwise all-to-all).
// Communicator splitting mirrors MPI_Comm_split, giving SUMMA its row /
// column / fiber / layer communicators.
//
// When compiled with CASP_VMPI_CHECK (the default; sanitizer builds force
// it on), every collective stamps an (op, seq, root, payload) fingerprint
// into the message header — see check.hpp — so mismatched collective order,
// mismatched roots and divergent allreduce lengths abort the job with a
// per-rank diagnostic instead of deadlocking or corrupting results.
//
// Payload handles are the primary surface; the typed helpers (send_vec,
// allgather_vec, allreduce, …) are thin wrappers over them. The byte-vector
// forms that predated the Payload transport (send_bytes and friends) are
// gone — casp_lint's comm-compat rule forbids reintroducing them anywhere.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/payload.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "obs/recorder.hpp"
#include "vmpi/check.hpp"
#include "vmpi/faults.hpp"
#include "vmpi/traffic.hpp"

namespace casp::vmpi {

/// Thrown in every blocked rank when some rank aborts with an exception, so
/// the whole virtual job tears down instead of deadlocking.
class Aborted : public std::runtime_error {
 public:
  Aborted() : std::runtime_error("virtual MPI job aborted by another rank") {}
};

#ifdef CASP_VMPI_SCHED
class SchedState;  // vmpi/sched.hpp — casp-verify scheduled-run state
#endif

namespace detail {

struct Message {
  std::uint64_t context;
  int src_world;  ///< sender's world rank
  int tag;
  /// Immutable shared handle: tree collectives forward it hop-to-hop
  /// without re-copying the bytes.
  Payload payload;
  /// Sender declared this message may legitimately go unreceived; exempts
  /// it from the job-end tag-leak sweep.
  bool fire_and_forget = false;
#ifdef CASP_VMPI_CHECK
  /// Fingerprint of the collective the sender was executing (op == kNone
  /// for plain point-to-point traffic).
  CollectiveStamp stamp;
  /// End-to-end FNV-1a64 payload checksum. Stamped by post_message and
  /// re-verified on delivery *only when a fault plan is armed* — fault-free
  /// runs (and therefore the release perf gates) never hash a byte. A
  /// mismatch on delivery counts vmpi.checksum_rejects and raises
  /// TransientCommError: corruption must surface as a transport fault, not
  /// as wrong C.
  std::uint64_t checksum = 0;
  bool has_checksum = false;
#endif
#ifdef CASP_VMPI_SCHED
  /// Happens-before analyzer message id (0 outside scheduled runs): the
  /// receiver joins the sender's vector-clock snapshot through this edge.
  std::uint64_t hb_id = 0;
#endif
};

#ifdef CASP_VMPI_CHECK
/// A stamped message still sitting in a mailbox at job end — evidence that
/// ranks disagreed on a collective's shape (e.g. two ranks both believing
/// they were the bcast root).
struct LeftoverCollective {
  int src_world = -1;
  int tag = 0;
  CollectiveStamp stamp;
};

/// A user-tag (tag >= 0) message still sitting in a mailbox at job end and
/// not marked fire-and-forget — a send the matching receive never consumed.
struct LeftoverMessage {
  int src_world = -1;
  int tag = 0;
  std::size_t bytes = 0;
};
#endif

/// One per world rank: MPSC mailbox with (context, src, tag) matching.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a matching message arrives or the job aborts.
  Message pop(std::uint64_t context, int src_world, int tag);
  /// True if a queued message matches (context, src, tag). Used by the
  /// deadlock watchdog to distinguish "blocked but about to wake" from
  /// "blocked forever".
  bool has_match(std::uint64_t context, int src_world, int tag);
  /// Non-blocking matched pop: true and fills `out` when a message matches.
  /// Scheduled runs re-check the mailbox through this before parking in the
  /// scheduler, which (with single-token execution) makes lost wakeups
  /// structurally impossible. Throws Aborted after abort_all.
  bool try_pop(std::uint64_t context, int src_world, int tag, Message& out);
  void abort_all();
#ifdef CASP_VMPI_CHECK
  std::vector<LeftoverCollective> stamped_leftovers();
  std::vector<LeftoverMessage> user_tag_leftovers();
#endif

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

/// Watchdog-visible status of one rank: whether it is blocked in a receive
/// (and on what), whether its thread finished, and — under CASP_VMPI_CHECK —
/// which collective it is inside plus a ring of recent collective entries
/// (the per-rank "collective backtrace" dumped on deadlock).
struct RankStatus {
  std::mutex mutex;
  bool blocked = false;
  bool finished = false;
  std::uint64_t wait_context = 0;
  int wait_src_world = -1;
  int wait_tag = 0;
#ifdef CASP_VMPI_CHECK
  CollectiveStamp current;
  /// Context of the communicator `current` runs on; pairs with World's
  /// split-ancestry map so the watchdog can name parent/child interleaving.
  std::uint64_t current_context = 0;
  std::array<CollectiveStamp, 8> history{};
  std::uint64_t history_count = 0;
#endif
};

/// Shared state of a virtual job: p mailboxes + per-rank status + abort flag.
struct World {
  explicit World(int size)
      : mailboxes(static_cast<std::size_t>(size)),
        status(static_cast<std::size_t>(size)) {}
  std::vector<Mailbox> mailboxes;
  std::vector<RankStatus> status;
  /// Job-wide time base: every rank's Recorder copies this stopwatch so
  /// cross-rank timeline timestamps are directly comparable.
  Stopwatch epoch;
  /// Bumped on every delivery (push or successful pop); the watchdog only
  /// trusts an all-blocked sample when this is stable across samples.
  std::atomic<std::uint64_t> progress{0};
  std::atomic<int> blocked{0};
  std::atomic<int> finished{0};
  /// Deterministic fault-injection state (vmpi/faults.hpp); null when the
  /// job runs without faults — the common case costs one pointer check per
  /// transport op.
  std::shared_ptr<FaultState> faults;
#ifdef CASP_VMPI_SCHED
  /// casp-verify scheduled-run state (scheduler + happens-before analyzer);
  /// null outside scheduled runs — the common case costs one pointer check
  /// per transport op, mirroring `faults`.
  std::shared_ptr<SchedState> sched;
#endif
#ifdef CASP_VMPI_CHECK
  /// Split ancestry (child context -> parent context; the world is context
  /// 0 and has no entry). Lets the watchdog distinguish a generic deadlock
  /// from parent/child collective interleaving in rank-divergent orders.
  std::mutex comm_tree_mutex;
  std::map<std::uint64_t, std::uint64_t> comm_parent;
#endif
  /// Wake every blocked rank with Aborted (and, in a scheduled run, release
  /// the scheduler token so all threads can tear down). Out of line because
  /// SchedState is incomplete here.
  void abort_all();
};

}  // namespace detail

#ifdef CASP_VMPI_CHECK
/// RAII guard marking "this rank is inside collective X on this
/// communicator". Every entry gets the next per-communicator sequence
/// number; nested entries (the broadcast inside allreduce, the allgather
/// inside split) save and restore the enclosing stamp so send/recv always
/// see the innermost collective.
class CollectiveScope {
 public:
  CollectiveScope(class Comm& comm, CollectiveOp op, int root,
                  std::uint64_t payload);
  ~CollectiveScope();
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;

 private:
  class Comm& comm_;
  CollectiveStamp saved_;
  std::uint64_t saved_context_ = 0;
};

#define CASP_VMPI_COLLECTIVE(op, root, payload) \
  ::casp::vmpi::CollectiveScope casp_collective_scope_ { *this, op, root, payload }
#else
#define CASP_VMPI_COLLECTIVE(op, root, payload) \
  do {                                          \
  } while (0)
#endif

/// Handle for a nonblocking broadcast posted with Comm::ibcast_payload.
/// The root's sends happen at post time; a non-root pulls its copy (and
/// forwards to its binomial-tree children) when the posting rank calls
/// Comm::bcast_wait. Each post draws a distinct tag so trees of adjacent
/// pipeline stages can be in flight on the same communicator at once.
class PendingBcast {
 public:
  PendingBcast() = default;
  bool valid() const { return root_ >= 0; }

 private:
  friend class Comm;
  int root_ = -1;
  int tag_ = 0;
  bool done_ = false;
  Payload data_;  ///< root: the input; non-root: filled at wait
#ifdef CASP_VMPI_CHECK
  CollectiveStamp stamp_;  ///< created at post, verified/forwarded at wait
#endif
};

/// One peer's reply in a sparse exchange: the messages to ship (built as
/// subview handles into the sender's packed block, so no block bytes are
/// copied) plus the byte volume a dense full-block send to this peer would
/// have carried. The comm layer ships the messages and charges
/// max(0, dense_equivalent - shipped) as logical-only traffic
/// (TrafficStats::record_unshipped), so run reports expose the measured
/// savings against the dense Table II accounting.
struct SparseReply {
  std::vector<Payload> messages;
  Bytes dense_equivalent_bytes = 0;
};

/// Root-side serve callback of a sparse exchange: invoked once per peer
/// with the peer's communicator-local rank and its request payload.
using SparseServeFn = std::function<SparseReply(int src, Payload request)>;

/// Handle for a sparse request/reply exchange posted with
/// Comm::isparse_exchange. Non-roots send their need-list at post time; the
/// root serves every peer (and peers receive their replies) in sparse_wait.
/// Each post draws a distinct (request, data) tag pair so exchanges of
/// adjacent pipeline stages can be in flight on the same communicator.
class PendingSparse {
 public:
  PendingSparse() = default;
  bool valid() const { return root_ >= 0; }

 private:
  friend class Comm;
  int root_ = -1;
  int req_tag_ = 0;
  int data_tag_ = 0;
  bool done_ = false;
#ifdef CASP_VMPI_CHECK
  CollectiveStamp stamp_;  ///< created at post, verified at wait
#endif
};

/// Per-rank communicator handle. Not thread-safe; each rank owns its own.
class Comm {
 public:
  /// World communicator for `rank` of `size` (constructed by Runtime).
  Comm(std::shared_ptr<detail::World> world, int world_rank, int size);

  int rank() const { return rank_; }
  int size() const { return size_; }

  // -- Point-to-point (ranks are communicator-local) ----------------------

  /// Hands an already-refcounted buffer to `dest` without copying the
  /// bytes. `fire_and_forget` exempts the message from the job-end
  /// tag-leak sweep (for sends the receiver may legitimately drop).
  void send_payload(int dest, int tag, Payload payload,
                    bool fire_and_forget = false);
  Payload recv_payload(int src, int tag);

  /// Typed helpers over the payload primitives: one deep copy at the send
  /// boundary, one private buffer at the receive boundary.
  template <typename T>
  void send_vec(int dest, int tag, const std::vector<T>& data) {
    send_payload(dest, tag, pack_vec<T>(data));
  }

  template <typename T>
  std::vector<T> recv_vec(int src, int tag) {
    return unpack_vec<T>(recv_payload(src, tag));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_payload(dest, tag,
                 Payload::copy_of(reinterpret_cast<const std::byte*>(&v),
                                  sizeof(T)));
  }

  template <typename T>
  T recv_value(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Payload p = recv_payload(src, tag);
    CASP_CHECK(p.size() == sizeof(T));
    T v;
    std::memcpy(&v, p.data(), sizeof(T));
    return v;
  }

  // -- Collectives ---------------------------------------------------------

  /// Dissemination barrier: ceil(lg p) rounds.
  void barrier();

  /// Binomial-tree broadcast from `root`; every rank returns a handle to
  /// the *same* allocation (the root's input) — no per-hop copies.
  Payload bcast_payload(int root, Payload data);

  /// Nonblocking broadcast: the root publishes its sends immediately so
  /// receivers can overlap compute with the in-flight data; every rank must
  /// later call bcast_wait on the returned handle, in the same order on all
  /// ranks. `data` is ignored on non-roots.
  PendingBcast ibcast_payload(int root, Payload data);
  /// Completes a pending broadcast: non-roots receive and forward to their
  /// tree children here. Returns the broadcast payload on every rank.
  Payload bcast_wait(PendingBcast& pending);

  /// Sparse request/reply exchange ("sparse-exchange" collective): every
  /// rank posts with the same root in SPMD order. Non-roots send `request`
  /// (their app-defined need-list) to the root immediately so the metadata
  /// round overlaps whatever the root is still computing; `request` is
  /// ignored on the root.
  PendingSparse isparse_exchange(int root, Payload request);
  /// Completes the exchange. The root calls `serve` once per peer (in
  /// ascending rank order), ships each reply's messages, and returns an
  /// empty vector (the root reads its own block locally). Every non-root
  /// returns its reply's messages in sent order; `serve` is not invoked.
  std::vector<Payload> sparse_wait(PendingSparse& pending,
                                   const SparseServeFn& serve);

  template <typename T>
  T bcast_value(int root, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Payload p;
    if (rank_ == root)
      p = Payload::copy_of(reinterpret_cast<const std::byte*>(&v), sizeof(T));
    p = bcast_payload(root, std::move(p));
    CASP_CHECK(p.size() == sizeof(T));
    T out;
    std::memcpy(&out, p.data(), sizeof(T));
    return out;
  }

  /// Binomial-tree reduce to root followed by broadcast. `op` must be
  /// associative and commutative; applied elementwise on equal-length
  /// vectors.
  template <typename T>
  std::vector<T> allreduce(std::vector<T> data,
                           const std::function<T(T, T)>& op) {
    std::vector<T> reduced;
    {
      CASP_VMPI_COLLECTIVE(
          CollectiveOp::kReduce, 0,
          static_cast<std::uint64_t>(data.size() * sizeof(T)));
      reduced = reduce_to_root(std::move(data), op);
    }
    Payload p;
    if (rank_ == 0) p = pack_vec<T>(reduced);
    return unpack_vec<T>(bcast_payload(0, std::move(p)));
  }

  template <typename T>
  T allreduce_sum(T v) {
    auto out = allreduce<T>({v}, [](T a, T b) { return a + b; });
    return out.at(0);
  }
  template <typename T>
  T allreduce_max(T v) {
    auto out = allreduce<T>({v}, [](T a, T b) { return a > b ? a : b; });
    return out.at(0);
  }
  template <typename T>
  T allreduce_min(T v) {
    auto out = allreduce<T>({v}, [](T a, T b) { return a < b ? a : b; });
    return out.at(0);
  }

  /// All-gather of one payload per rank (binomial gather to rank 0 +
  /// broadcast of the concatenation). Returns size() handles; on every rank
  /// they are subviews of one shared concatenation buffer.
  std::vector<Payload> allgather_payload(Payload mine);

  template <typename T>
  std::vector<T> allgather_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<Payload> all = allgather_payload(
        Payload::copy_of(reinterpret_cast<const std::byte*>(&v), sizeof(T)));
    std::vector<T> out(all.size());
    for (std::size_t r = 0; r < all.size(); ++r) {
      CASP_CHECK(all[r].size() == sizeof(T));
      std::memcpy(&out[r], all[r].data(), sizeof(T));
    }
    return out;
  }

  /// All-gather of a variable-length typed vector per rank; returns the
  /// rank-ordered concatenation of every rank's elements.
  template <typename T>
  std::vector<T> allgather_vec(const std::vector<T>& mine) {
    std::vector<Payload> all = allgather_payload(pack_vec<T>(mine));
    std::size_t total = 0;
    for (const Payload& p : all) total += p.size();
    CASP_CHECK(total % sizeof(T) == 0);
    std::vector<T> out(total / sizeof(T));
    auto* dst = reinterpret_cast<std::byte*>(out.data());
    static_assert(std::is_trivially_copyable_v<T>);
    for (const Payload& p : all) {
      if (p.size() == 0) continue;
      std::memcpy(dst, p.data(), p.size());
      dst += p.size();
    }
    return out;
  }

  /// Personalized all-to-all (pairwise exchange, p-1 rounds). buffers[d] is
  /// sent to rank d; returns one handle per source rank, shared with the
  /// sender's allocation.
  std::vector<Payload> alltoall_payload(std::vector<Payload> buffers);

  /// MPI_Comm_split: ranks with the same color form a child communicator,
  /// ordered by (key, rank).
  Comm split(int color, int key);

  // -- Instrumentation ------------------------------------------------------

  /// The rank's unified observability recorder (timeline spans, tags,
  /// counters, memory samples); split communicators share their parent's.
  obs::Recorder& recorder() { return *recorder_; }

  TrafficStats& traffic() { return recorder_->traffic(); }
  TimeAccumulator& times() { return recorder_->times(); }

  /// Set both the traffic phase and the timing context for a scope.
  void set_phase(const std::string& phase) { traffic().set_phase(phase); }

  /// My world rank (the communicator-local rank mapped through members_);
  /// what failure reports and the fault plan key decisions on.
  int world_rank() const {
    return members_[static_cast<std::size_t>(rank_)];
  }

  /// The job's fault-injection state, or null when faults are disabled.
  /// Used by arm_alloc_faults to hook a MemoryTracker into the plan.
  detail::FaultState* fault_state() const { return world_->faults.get(); }

 private:
  /// Pack a trivially-copyable vector into a fresh payload (the one deep
  /// copy at the typed-API boundary).
  template <typename T>
  static Payload pack_vec(const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Payload::copy_of(reinterpret_cast<const std::byte*>(data.data()),
                            data.size() * sizeof(T));
  }

  /// Unpack a payload into a private typed vector.
  template <typename T>
  static std::vector<T> unpack_vec(const Payload& p) {
    static_assert(std::is_trivially_copyable_v<T>);
    CASP_CHECK(p.size() % sizeof(T) == 0);
    std::vector<T> out(p.size() / sizeof(T));
    if (p.size() != 0) std::memcpy(out.data(), p.data(), p.size());
    return out;
  }

  template <typename T>
  std::vector<T> reduce_to_root(std::vector<T> data,
                                const std::function<T(T, T)>& op) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Binomial tree: in round k, ranks with bit k set send to rank - 2^k.
    const int p = size_;
    int mask = 1;
    while (mask < p) {
      if ((rank_ & mask) != 0) {
        send_vec<T>(rank_ - mask, kReduceTag, data);
        return data;  // contribution absorbed; final value via bcast
      }
      if (rank_ + mask < p) {
        std::vector<T> other = recv_vec<T>(rank_ + mask, kReduceTag);
        CASP_CHECK_MSG(other.size() == data.size(),
                       "allreduce: length mismatch across ranks");
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = op(data[i], other[i]);
      }
      mask <<= 1;
    }
    return data;
  }

  Comm(std::shared_ptr<detail::World> world, std::uint64_t context,
       std::vector<int> members, int my_pos);

  /// Enqueue a message for `dest`, recording the full logical bytes in
  /// TrafficStats (handle forwarding never discounts a hop).
  void post_message(int dest, int tag, Payload payload, bool fire_and_forget);
  /// Blocking matched receive with watchdog bookkeeping; stamp verification
  /// is the caller's job (recv paths check against the current collective,
  /// bcast_wait against the stamp saved at post time).
  detail::Message take_message(int src, int tag);

#ifdef CASP_VMPI_CHECK
  friend class CollectiveScope;
  /// Abort with a CollectiveMismatch if `msg` carries a collective stamp
  /// that disagrees with the collective this rank is currently inside.
  void verify_collective_stamp(const detail::Message& msg, int src);
  /// Abort if `msg`'s stamp disagrees with `expected` (the stamp a pending
  /// ibcast saved at post time — current_collective_ is stale by wait time).
  void verify_stamp_against(const detail::Message& msg, int src,
                            const CollectiveStamp& expected);
#endif

  static constexpr int kReduceTag = -101;
  static constexpr int kBcastTag = -102;
  static constexpr int kBarrierTag = -103;
  static constexpr int kGatherTag = -104;
  static constexpr int kAlltoallTag = -105;
  static constexpr int kSplitTag = -106;
  /// Nonblocking broadcasts draw from their own tag space so overlapping
  /// trees (pipeline stage s and s+1) can never cross-match in the mailbox.
  static constexpr int kIbcastTagBase = -200;
  static constexpr int kIbcastTagSlots = 1024;
  /// Sparse exchanges draw a (request, data) tag pair per post from two
  /// reserved spaces below the ibcast range, so in-flight exchanges can
  /// never cross-match each other or any broadcast tree.
  static constexpr int kSparseReqTagBase = -2000;
  static constexpr int kSparseDataTagBase = -3100;
  static constexpr int kSparseTagSlots = 1024;

  std::shared_ptr<detail::World> world_;
  std::uint64_t context_;
  std::vector<int> members_;  ///< communicator-local rank -> world rank
  int rank_;
  int size_;
  std::uint64_t split_counter_ = 0;
  /// SPMD-consistent count of ibcast posts on this communicator; derives
  /// the per-call tag. Identical across ranks because every rank posts the
  /// same broadcasts in the same order.
  std::uint64_t ibcast_counter_ = 0;
  /// SPMD-consistent count of sparse-exchange posts; mirrors
  /// ibcast_counter_ for the sparse tag spaces.
  std::uint64_t sparse_counter_ = 0;
#ifdef CASP_VMPI_CHECK
  CollectiveStamp current_collective_;
  std::uint64_t collective_seq_ = 0;
#endif
  // Shared across all Comm objects of this rank so phase labels, timings
  // and timeline spans aggregate rank-wide (a split communicator inherits
  // its parent's recorder).
  std::shared_ptr<obs::Recorder> recorder_;
};

}  // namespace casp::vmpi
