// Deterministic fault injection for the virtual MPI runtime.
//
// The paper's algorithms are designed for machines where memory budgets,
// transport hiccups and node failures are facts of life; a reproduction
// that only ever runs on the happy path cannot claim to model them. This
// header defines a seeded FaultPlan that the runtime consults at every
// transport operation: per-rank delays, transient payload send/bcast
// failures (TransientCommError, retried by the transport with bounded
// exponential backoff), a rank crash at its Nth vmpi op, and allocation
// failures hooked through MemoryTracker. Every decision is a pure hash of
// (seed, rank, op index, attempt), so a failing run replays exactly from
// its seed regardless of thread scheduling — the property the fault-matrix
// tests and `tools/check.sh` stage (f) rely on.
//
// Plans come from the programmatic API (vmpi::RunOptions::faults) or the
// CASP_VMPI_FAULTS environment spec, a semicolon/comma-separated key=value
// list, e.g.
//   CASP_VMPI_FAULTS="seed=42;send_fail=0.01;crash_rank=3;crash_op=120"
// Keys: seed, send_fail, alloc_fail, corrupt_prob, delay_us, delay_every,
// delay_rank, crash_rank, crash_op, perm_crash_rank, perm_crash_op,
// retry_max, retry_base_us, retry_cap_us.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/memory_tracker.hpp"
#include "common/types.hpp"
#include "obs/recorder.hpp"

namespace casp::vmpi {

/// A send attempt failed in a way the transport is expected to retry
/// (lossy link, timed-out handshake). Injected by FaultPlan; handled inside
/// Comm::post_message, never silently swallowed (casp_lint: empty-catch).
class TransientCommError : public std::runtime_error {
 public:
  explicit TransientCommError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A rank was killed by the fault plan at its Nth vmpi operation. Escapes
/// the rank body and tears the job down like any rank exception; vmpi::run
/// classifies it as "rank_crash" in the FailureReport.
class InjectedRankCrash : public std::runtime_error {
 public:
  explicit InjectedRankCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// The transport gave up on a send after RetryPolicy::max_attempts
/// consecutive transient failures. Unrecoverable; classified as
/// "retry_exhausted".
class RetryExhausted : public std::runtime_error {
 public:
  explicit RetryExhausted(const std::string& what)
      : std::runtime_error(what) {}
};

/// A rank died for good: unlike InjectedRankCrash, the failure persists
/// across supervisor relaunches — the node is gone, not rebooting. vmpi::run
/// classifies it as "permanent_crash" (non-recoverable on the same grid);
/// the service layer marks the rank dead in the RankPool health map and may
/// re-admit the job on a shrunk survivor grid (DESIGN.md §5j).
class PermanentRankCrash : public std::runtime_error {
 public:
  explicit PermanentRankCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// How the transport retries transient send failures: up to max_attempts
/// tries per message, sleeping min(base_delay_us << attempt, cap_delay_us)
/// between them. Every attempt retransmits, so every attempt is charged to
/// TrafficStats — Table II accounting stays honest under faults.
struct RetryPolicy {
  int max_attempts = 4;
  int base_delay_us = 50;
  int cap_delay_us = 2000;

  /// Backoff before attempt `attempt`+1 (exponential, capped).
  int backoff_us(int attempt) const;
};

/// Seeded, reproducible fault schedule for one virtual job. All decision
/// functions are pure hashes of (seed, rank, per-rank op/alloc index,
/// attempt): two runs with the same plan inject exactly the same faults at
/// the same logical operations, independent of thread interleaving.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability any single send attempt (point-to-point or a collective's
  /// tree hop) fails with TransientCommError.
  double send_fail = 0.0;
  /// Probability any single MemoryTracker allocation fails (requires
  /// arm_alloc_faults on the tracker).
  double alloc_fail = 0.0;
  /// Every delay_every-th vmpi op on delay_rank (-1 = every rank) sleeps
  /// delay_us microseconds. 0 for either disables delays.
  int delay_us = 0;
  int delay_every = 0;
  int delay_rank = -1;
  /// crash_rank throws InjectedRankCrash at its crash_op-th vmpi op
  /// (1-based). crash_rank == -1 disables crashes.
  int crash_rank = -1;
  std::uint64_t crash_op = 1;
  /// perm_crash_rank throws PermanentRankCrash at its perm_crash_op-th vmpi
  /// op: the rank is dead for good and a same-grid relaunch cannot help.
  /// perm_crash_rank == -1 disables permanent crashes.
  int perm_crash_rank = -1;
  std::uint64_t perm_crash_op = 1;
  /// Probability any single send attempt delivers a corrupted payload
  /// (seeded byte flip). With a fault state armed the transport checksums
  /// every message, detects the flip at the link, and retries it as a
  /// TransientCommError (counter vmpi.checksum_rejects) — silent corruption
  /// must never become wrong C.
  double corrupt_prob = 0.0;
  RetryPolicy retry;

  /// True iff any injection is configured (a disabled plan costs the
  /// transport one null check per op).
  bool enabled() const;

  /// Parse the CASP_VMPI_FAULTS environment spec; disabled plan when the
  /// variable is unset or empty. Throws InvalidArgument on a bad spec.
  static FaultPlan from_env();
  /// Parse a spec string (see header comment for the grammar). Strict:
  /// unknown, duplicate, or malformed keys and out-of-range values throw
  /// InvalidArgument naming the offending key — a typoed spec must never
  /// silently run fault-free.
  static FaultPlan parse(const std::string& spec);
  /// Copy of this plan with the fault behind an already-fired failure
  /// removed: "rank_crash"/"deadlock" clear crash_rank, "retry_exhausted"
  /// clears send_fail, "permanent_crash" clears perm_crash_rank (applied by
  /// the *service* when relaunching on a shrunk grid — the dead rank is no
  /// longer part of the job). The supervisor (vmpi::run_supervised) applies
  /// this between attempts so the same deterministic fault does not kill
  /// every relaunch.
  FaultPlan disarmed(const std::string& failure_kind) const;
  /// Canonical spec string (round-trips through parse); used in failure
  /// reports so a crash names the plan that produced it.
  std::string describe() const;

  // -- Pure per-(rank, op) decisions ---------------------------------------
  bool send_attempt_fails(int rank, std::uint64_t op, int attempt) const;
  bool send_attempt_corrupts(int rank, std::uint64_t op, int attempt) const;
  bool alloc_fails(int rank, std::uint64_t alloc_index) const;
  bool crashes_at(int rank, std::uint64_t op) const {
    return rank == crash_rank && op == crash_op;
  }
  bool perm_crashes_at(int rank, std::uint64_t op) const {
    return rank == perm_crash_rank && op == perm_crash_op;
  }
  bool delays_at(int rank, std::uint64_t op) const {
    return delay_us > 0 && delay_every > 0 &&
           (delay_rank < 0 || delay_rank == rank) && op % delay_every == 0;
  }
};

namespace detail {

/// Per-job mutable side of the plan: monotone per-rank op and allocation
/// counters (each slot touched only by its owning rank thread; atomics keep
/// the watchdog and TSan happy). Owned by detail::World.
class FaultState {
 public:
  FaultState(FaultPlan plan, int size);

  const FaultPlan& plan() const { return plan_; }

  /// Entry hook for every vmpi transport op (send post, blocking receive):
  /// bumps the rank's op counter, applies injected delays, and throws
  /// InjectedRankCrash when the plan says this op is the rank's last.
  /// Returns the 1-based op index for downstream per-attempt decisions.
  std::uint64_t enter_op(int rank, obs::Recorder& rec);

  /// Throws TransientCommError when the plan fails this send attempt.
  void check_send(int rank, std::uint64_t op, int attempt,
                  obs::Recorder& rec);

  /// Throws TransientCommError when the plan corrupts this send attempt and
  /// the transport's checksum catches it (counters vmpi.checksum_rejects and
  /// vmpi.faults_injected). Modeled at the link layer: the corrupted frame
  /// is rejected before delivery and the sender's retry loop retransmits.
  void check_corrupt(int rank, std::uint64_t op, int attempt,
                     obs::Recorder& rec);

  /// Next 1-based allocation index for `rank` (alloc-fault decisions).
  std::uint64_t next_alloc(int rank);

  /// Sleep the bounded-exponential backoff before retrying `attempt`.
  void backoff(int attempt) const;

 private:
  FaultPlan plan_;
  struct RankCounters {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> allocs{0};
  };
  std::vector<RankCounters> per_rank_;
};

}  // namespace detail

class Comm;

/// Install the job's deterministic allocation-fault injection onto a
/// MemoryTracker (no-op when the job runs without alloc faults). The hook
/// draws from `comm`'s rank-specific fault stream and bumps the rank's
/// `vmpi.faults_injected` counter; an injected failure throws MemoryError
/// from MemoryTracker::allocate (or marks the probe window overrun inside
/// BatchedSUMMA3D's re-batch protocol). The tracker must not outlive the
/// job.
void arm_alloc_faults(Comm& comm, MemoryTracker& tracker);

}  // namespace casp::vmpi
