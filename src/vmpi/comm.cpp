#include "vmpi/comm.hpp"

#include <algorithm>
#include <sstream>

#include "common/hash.hpp"
#include "vmpi/sched.hpp"

namespace casp::vmpi {

namespace detail {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(std::uint64_t context, int src_world, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (aborted_) throw Aborted();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->context == context && it->src_world == src_world &&
          it->tag == tag) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::has_match(std::uint64_t context, int src_world, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Message& m : queue_) {
    if (m.context == context && m.src_world == src_world && m.tag == tag)
      return true;
  }
  return false;
}

bool Mailbox::try_pop(std::uint64_t context, int src_world, int tag,
                      Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (aborted_) throw Aborted();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->context == context && it->src_world == src_world &&
        it->tag == tag) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void Mailbox::abort_all() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

#ifdef CASP_VMPI_CHECK
std::vector<LeftoverCollective> Mailbox::stamped_leftovers() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LeftoverCollective> out;
  for (const Message& m : queue_) {
    if (m.stamp.op == CollectiveOp::kNone) continue;
    LeftoverCollective l;
    l.src_world = m.src_world;
    l.tag = m.tag;
    l.stamp = m.stamp;
    out.push_back(l);
  }
  return out;
}

std::vector<LeftoverMessage> Mailbox::user_tag_leftovers() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LeftoverMessage> out;
  for (const Message& m : queue_) {
    // Internal (negative) tags belong to the collective sweep; explicit
    // fire-and-forget sends are exempt by contract.
    if (m.tag < 0 || m.fire_and_forget) continue;
    LeftoverMessage l;
    l.src_world = m.src_world;
    l.tag = m.tag;
    l.bytes = m.payload.size();
    out.push_back(l);
  }
  return out;
}
#endif

void World::abort_all() {
#ifdef CASP_VMPI_SCHED
  // Release the scheduler first: rank threads parked on the token must be
  // free-running before mailbox aborts can reach them.
  if (sched != nullptr) sched->scheduler().abort_all();
#endif
  for (Mailbox& m : mailboxes) m.abort_all();
}

}  // namespace detail

#ifdef CASP_VMPI_CHECK
CollectiveScope::CollectiveScope(Comm& comm, CollectiveOp op, int root,
                                 std::uint64_t payload)
    : comm_(comm), saved_(comm.current_collective_) {
  CollectiveStamp stamp;
  stamp.op = op;
  stamp.seq = ++comm.collective_seq_;
  stamp.root = root;
  stamp.payload = payload;
  comm.current_collective_ = stamp;
  const int my_world =
      comm.members_[static_cast<std::size_t>(comm.rank_)];
  detail::RankStatus& st =
      comm.world_->status[static_cast<std::size_t>(my_world)];
  std::lock_guard<std::mutex> lock(st.mutex);
  saved_context_ = st.current_context;
  st.current = stamp;
  st.current_context = comm.context_;
  st.history[st.history_count % st.history.size()] = stamp;
  ++st.history_count;
}

CollectiveScope::~CollectiveScope() {
  comm_.current_collective_ = saved_;
  const int my_world =
      comm_.members_[static_cast<std::size_t>(comm_.rank_)];
  detail::RankStatus& st =
      comm_.world_->status[static_cast<std::size_t>(my_world)];
  std::lock_guard<std::mutex> lock(st.mutex);
  st.current = saved_;
  st.current_context = saved_context_;
}

void Comm::verify_collective_stamp(const detail::Message& msg, int src) {
  verify_stamp_against(msg, src, current_collective_);
}

void Comm::verify_stamp_against(const detail::Message& msg, int src,
                                const CollectiveStamp& expected) {
  const CollectiveStamp& mine = expected;
  const CollectiveStamp& theirs = msg.stamp;
  // Plain point-to-point traffic on either side is outside the checker's
  // jurisdiction (tags already isolate it from collective traffic).
  if (mine.op == CollectiveOp::kNone || theirs.op == CollectiveOp::kNone)
    return;
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  const int src_world = members_[static_cast<std::size_t>(src)];
  if (theirs.op != mine.op || theirs.seq != mine.seq ||
      theirs.root != mine.root) {
    std::ostringstream os;
    os << "vmpi collective mismatch on communicator 0x" << std::hex
       << context_ << std::dec << ": rank " << my_world << " executing "
       << describe_stamp(mine) << " received a message rank " << src_world
       << " sent inside " << describe_stamp(theirs)
       << " — ranks disagree on collective order";
    throw CollectiveMismatch(os.str());
  }
  if (mine.op == CollectiveOp::kReduce && theirs.payload != mine.payload) {
    std::ostringstream os;
    os << "vmpi collective mismatch: allreduce length divergence in "
       << describe_stamp(mine) << " — rank " << my_world << " contributed "
       << mine.payload << " bytes but rank " << src_world << " contributed "
       << theirs.payload << " bytes";
    throw CollectiveMismatch(os.str());
  }
}
#endif

Comm::Comm(std::shared_ptr<detail::World> world, int world_rank, int size)
    : world_(std::move(world)),
      context_(0),
      rank_(world_rank),
      size_(size),
      recorder_(std::make_shared<obs::Recorder>()) {
  members_.resize(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) members_[static_cast<std::size_t>(r)] = r;
  // All ranks share the World's stopwatch so timeline timestamps line up.
  recorder_->set_epoch(world_->epoch);
}

Comm::Comm(std::shared_ptr<detail::World> world, std::uint64_t context,
           std::vector<int> members, int my_pos)
    : world_(std::move(world)),
      context_(context),
      members_(std::move(members)),
      rank_(my_pos),
      size_(static_cast<int>(members_.size())) {}

void Comm::post_message(int dest, int tag, Payload payload,
                        bool fire_and_forget) {
  CASP_CHECK_MSG(dest >= 0 && dest < size_, "send to invalid rank " << dest);
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  const int dest_world = members_[static_cast<std::size_t>(dest)];
  detail::FaultState* faults = world_->faults.get();
  std::uint64_t op = 0;
  if (faults != nullptr) op = faults->enter_op(my_world, *recorder_);
  // Transient-fault retry loop. Every attempt — including ones the fault
  // plan fails — charges the full logical bytes: a failed attempt already
  // put its bytes on the wire, so Table II accounting must count the
  // retransmission too. The no-fault path runs the loop body exactly once
  // and charges exactly once, as before. The receiver's world rank feeds
  // the per-phase rank×rank traffic matrix.
  for (int attempt = 0;; ++attempt) {
    recorder_->traffic().record_send(static_cast<Bytes>(payload.size()),
                                     dest_world);
    if (faults == nullptr) break;
    try {
      faults->check_send(my_world, op, attempt, *recorder_);
      // Seeded byte-flip model: the link-layer frame checksum catches the
      // corrupted attempt before delivery, so it retries exactly like a
      // dropped packet (and exhausts the same retry budget).
      faults->check_corrupt(my_world, op, attempt, *recorder_);
      break;
    } catch (const TransientCommError& e) {
      if (attempt + 1 >= faults->plan().retry.max_attempts) {
        std::ostringstream os;
        os << "send retry budget exhausted after "
           << faults->plan().retry.max_attempts << " attempts (rank "
           << my_world << " -> rank " << dest_world << ", tag " << tag
           << "): " << e.what();
        throw RetryExhausted(os.str());
      }
      recorder_->add_counter("vmpi.retries", 1);
      faults->backoff(attempt);
    }
  }
  detail::Message msg;
  msg.context = context_;
  msg.src_world = members_[static_cast<std::size_t>(rank_)];
  msg.tag = tag;
  msg.payload = std::move(payload);
  msg.fire_and_forget = fire_and_forget;
#ifdef CASP_VMPI_CHECK
  msg.stamp = current_collective_;
  if (faults != nullptr) {
    // End-to-end integrity cover for fault runs only: fault-free runs (the
    // perf-gated path) never pay for the hash.
    msg.checksum = fnv1a64(msg.payload.data(), msg.payload.size());
    msg.has_checksum = true;
  }
#endif
#ifdef CASP_VMPI_SCHED
  SchedState* sched = world_->sched.get();
  if (sched != nullptr) {
    // Decision point before the delivery becomes visible, then a message
    // edge for the happens-before analyzer (the id travels in the header).
    sched->scheduler().yield(my_world);
    if (!sched->scheduler().aborted()) {
      msg.hb_id = sched->analyzer().on_send(my_world, context_, dest_world,
                                            tag, msg.payload.buffer_id(),
                                            msg.payload.size());
    }
  }
#endif
  world_->mailboxes[static_cast<std::size_t>(members_[static_cast<std::size_t>(dest)])]
      .push(std::move(msg));
  world_->progress.fetch_add(1, std::memory_order_relaxed);
#ifdef CASP_VMPI_SCHED
  if (sched != nullptr) {
    // Re-arm a receiver parked on exactly this (context, src, tag), then
    // take another decision point so it can preempt the sender right here.
    sched->scheduler().notify_delivery(dest_world, context_, my_world, tag);
    sched->scheduler().yield(my_world);
  }
#endif
}

detail::Message Comm::take_message(int src, int tag) {
  CASP_CHECK_MSG(src >= 0 && src < size_, "recv from invalid rank " << src);
  const int my_world = members_[static_cast<std::size_t>(rank_)];
  const int src_world = members_[static_cast<std::size_t>(src)];
  // Receives count as vmpi ops for the fault plan (delays and crash-at-op
  // schedules see the rank's full transport activity, not just its sends).
  if (world_->faults != nullptr)
    world_->faults->enter_op(my_world, *recorder_);
  // Publish what we are about to block on so the deadlock watchdog can tell
  // a stuck job from a busy one (and say who waits for whom).
  detail::RankStatus& st =
      world_->status[static_cast<std::size_t>(my_world)];
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.blocked = true;
    st.wait_context = context_;
    st.wait_src_world = src_world;
    st.wait_tag = tag;
  }
  world_->blocked.fetch_add(1, std::memory_order_relaxed);
  detail::Message msg;
  try {
#ifdef CASP_VMPI_SCHED
    SchedState* sched = world_->sched.get();
    if (sched != nullptr) {
      // Scheduled receive: re-check the mailbox while holding the token,
      // and only park in the scheduler when nothing matches. Because just
      // one rank runs at a time, a delivery can never slip in between the
      // check and the park — an empty runnable set is an exact deadlock.
      Scheduler& s = sched->scheduler();
      s.yield(my_world);
      detail::Mailbox& box =
          world_->mailboxes[static_cast<std::size_t>(my_world)];
      while (!box.try_pop(context_, src_world, tag, msg)) {
        s.block_recv(my_world, context_, src_world, tag);
      }
      if (!s.aborted()) sched->analyzer().on_recv(my_world, msg.hb_id);
    } else {
      msg = world_->mailboxes[static_cast<std::size_t>(my_world)].pop(
          context_, src_world, tag);
    }
#else
    msg = world_->mailboxes[static_cast<std::size_t>(my_world)].pop(
        context_, src_world, tag);
#endif
  } catch (...) {
    world_->blocked.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(st.mutex);
    st.blocked = false;
    throw;
  }
  world_->blocked.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.blocked = false;
  }
  world_->progress.fetch_add(1, std::memory_order_relaxed);
#ifdef CASP_VMPI_CHECK
  if (msg.has_checksum &&
      fnv1a64(msg.payload.data(), msg.payload.size()) != msg.checksum) {
    recorder_->add_counter("vmpi.checksum_rejects", 1);
    std::ostringstream os;
    os << "payload checksum mismatch on delivery: rank " << my_world
       << " received " << msg.payload.size() << " corrupted bytes from rank "
       << src_world << " (tag " << tag << ")";
    throw TransientCommError(os.str());
  }
#endif
  return msg;
}

void Comm::send_payload(int dest, int tag, Payload payload,
                        bool fire_and_forget) {
  post_message(dest, tag, std::move(payload), fire_and_forget);
}

Payload Comm::recv_payload(int src, int tag) {
  detail::Message msg = take_message(src, tag);
#ifdef CASP_VMPI_CHECK
  verify_collective_stamp(msg, src);
#endif
  return std::move(msg.payload);
}

void Comm::barrier() {
  CASP_VMPI_COLLECTIVE(CollectiveOp::kBarrier, -1, 0);
  // Dissemination barrier: after round k every rank has (transitively)
  // heard from 2^(k+1) predecessors; ceil(lg p) rounds total.
  for (int k = 1; k < size_; k <<= 1) {
    const int dest = (rank_ + k) % size_;
    const int src = (rank_ - k % size_ + size_) % size_;
    send_value<char>(dest, kBarrierTag, 0);
    (void)recv_value<char>(src, kBarrierTag);
  }
}

Payload Comm::bcast_payload(int root, Payload data) {
  CASP_CHECK(root >= 0 && root < size_);
  if (size_ == 1) return data;
  CASP_VMPI_COLLECTIVE(CollectiveOp::kBcast, root, 0);
  const int relative = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if ((relative & mask) != 0) {
      const int src = (relative - mask + root) % size_;
      data = recv_payload(src, kBcastTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size_ && (relative & (mask - 1)) == 0 &&
        (relative & mask) == 0) {
      const int dest = (relative + mask + root) % size_;
      send_payload(dest, kBcastTag, data);  // handle copy, not a byte copy
    }
    mask >>= 1;
  }
  return data;
}

PendingBcast Comm::ibcast_payload(int root, Payload data) {
  CASP_CHECK(root >= 0 && root < size_);
  PendingBcast pending;
  pending.root_ = root;
  if (size_ == 1) {
    pending.data_ = std::move(data);
    pending.done_ = true;
    return pending;
  }
  // SPMD-consistent counter: every rank posts the same broadcasts in the
  // same order, so all ranks derive the same per-call tag and sequence.
  pending.tag_ = kIbcastTagBase -
                 static_cast<int>(ibcast_counter_++ % kIbcastTagSlots);
#ifdef CASP_VMPI_CHECK
  {
    CollectiveStamp stamp;
    stamp.op = CollectiveOp::kBcast;
    stamp.seq = ++collective_seq_;
    stamp.root = root;
    stamp.payload = 0;
    pending.stamp_ = stamp;
    const int my_world = members_[static_cast<std::size_t>(rank_)];
    detail::RankStatus& st =
        world_->status[static_cast<std::size_t>(my_world)];
    std::lock_guard<std::mutex> lock(st.mutex);
    st.history[st.history_count % st.history.size()] = stamp;
    ++st.history_count;
  }
#endif
  if (rank_ == root) {
    pending.data_ = std::move(data);
    // The root's whole binomial fan-out goes into the mailboxes now, so
    // receivers can overlap compute and find the data already delivered
    // when they reach their wait.
#ifdef CASP_VMPI_CHECK
    const CollectiveStamp saved = current_collective_;
    current_collective_ = pending.stamp_;
#endif
    int mask = 1;
    while (mask < size_) mask <<= 1;
    mask >>= 1;
    while (mask > 0) {
      if (mask < size_) {
        const int dest = (mask + root) % size_;
        send_payload(dest, pending.tag_, pending.data_);
      }
      mask >>= 1;
    }
#ifdef CASP_VMPI_CHECK
    current_collective_ = saved;
#endif
    pending.done_ = true;
  }
  return pending;
}

Payload Comm::bcast_wait(PendingBcast& pending) {
  CASP_CHECK_MSG(pending.valid(), "bcast_wait on an unposted PendingBcast");
  if (pending.done_) return pending.data_;  // root, size-1, or repeat wait
  const int root = pending.root_;
  const int relative = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if ((relative & mask) != 0) {
      const int src = (relative - mask + root) % size_;
      detail::Message msg = take_message(src, pending.tag_);
#ifdef CASP_VMPI_CHECK
      // current_collective_ is whatever this rank is doing *now*; the
      // broadcast's identity lives in the stamp saved at post time.
      verify_stamp_against(msg, src, pending.stamp_);
#endif
      pending.data_ = std::move(msg.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
#ifdef CASP_VMPI_CHECK
  const CollectiveStamp saved = current_collective_;
  current_collective_ = pending.stamp_;
#endif
  while (mask > 0) {
    if (relative + mask < size_ && (relative & (mask - 1)) == 0 &&
        (relative & mask) == 0) {
      const int dest = (relative + mask + root) % size_;
      send_payload(dest, pending.tag_, pending.data_);
    }
    mask >>= 1;
  }
#ifdef CASP_VMPI_CHECK
  current_collective_ = saved;
#endif
  pending.done_ = true;
  return pending.data_;
}

PendingSparse Comm::isparse_exchange(int root, Payload request) {
  CASP_CHECK(root >= 0 && root < size_);
  PendingSparse pending;
  pending.root_ = root;
  // SPMD-consistent counter, like ibcast_counter_: every rank posts the
  // same exchanges in the same order, so all ranks derive the same pair.
  const int slot = static_cast<int>(sparse_counter_++ % kSparseTagSlots);
  pending.req_tag_ = kSparseReqTagBase - slot;
  pending.data_tag_ = kSparseDataTagBase - slot;
  if (size_ == 1) {
    pending.done_ = true;
    return pending;
  }
#ifdef CASP_VMPI_CHECK
  {
    CollectiveStamp stamp;
    stamp.op = CollectiveOp::kSparseExchange;
    stamp.seq = ++collective_seq_;
    stamp.root = root;
    stamp.payload = 0;
    pending.stamp_ = stamp;
    const int my_world = members_[static_cast<std::size_t>(rank_)];
    detail::RankStatus& st =
        world_->status[static_cast<std::size_t>(my_world)];
    std::lock_guard<std::mutex> lock(st.mutex);
    st.history[st.history_count % st.history.size()] = stamp;
    ++st.history_count;
  }
#endif
  if (rank_ != root) {
    // The need-list goes into the root's mailbox now; the root drains all
    // requests when it reaches its own sparse_wait, so the metadata round
    // overlaps whatever either side computes in between.
#ifdef CASP_VMPI_CHECK
    const CollectiveStamp saved = current_collective_;
    current_collective_ = pending.stamp_;
#endif
    post_message(root, pending.req_tag_, std::move(request),
                 /*fire_and_forget=*/false);
#ifdef CASP_VMPI_CHECK
    current_collective_ = saved;
#endif
  }
  return pending;
}

std::vector<Payload> Comm::sparse_wait(PendingSparse& pending,
                                       const SparseServeFn& serve) {
  CASP_CHECK_MSG(pending.valid(), "sparse_wait on an unposted PendingSparse");
  std::vector<Payload> received;
  if (pending.done_) return received;  // size-1 communicator or repeat wait
  pending.done_ = true;
#ifdef CASP_VMPI_CHECK
  const CollectiveStamp saved = current_collective_;
  current_collective_ = pending.stamp_;
#endif
  if (rank_ == pending.root_) {
    // Serve every peer in rank order: the caller builds each reply as
    // subview handles into its packed block (no block-byte copies here),
    // the exchange frames them with a message-count header, and the dense
    // volume the reply avoided is charged as logical-only traffic.
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) continue;
      detail::Message req = take_message(r, pending.req_tag_);
#ifdef CASP_VMPI_CHECK
      verify_stamp_against(req, r, pending.stamp_);
#endif
      SparseReply reply = serve(r, std::move(req.payload));
      const std::uint64_t count = reply.messages.size();
      std::vector<std::byte> head(sizeof(count));
      std::memcpy(head.data(), &count, sizeof(count));
      Bytes shipped = static_cast<Bytes>(head.size());
      post_message(r, pending.data_tag_, Payload::wrap(std::move(head)),
                   /*fire_and_forget=*/false);
      for (Payload& m : reply.messages) {
        shipped += static_cast<Bytes>(m.size());
        post_message(r, pending.data_tag_, std::move(m),
                     /*fire_and_forget=*/false);
      }
      if (reply.dense_equivalent_bytes > shipped)
        traffic().record_unshipped(reply.dense_equivalent_bytes - shipped,
                                   members_[static_cast<std::size_t>(r)]);
    }
  } else {
    detail::Message head = take_message(pending.root_, pending.data_tag_);
#ifdef CASP_VMPI_CHECK
    verify_stamp_against(head, pending.root_, pending.stamp_);
#endif
    CASP_CHECK_MSG(head.payload.size() == sizeof(std::uint64_t),
                   "sparse_wait: malformed reply count header");
    std::uint64_t count = 0;
    std::memcpy(&count, head.payload.data(), sizeof(count));
    received.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t k = 0; k < count; ++k) {
      detail::Message msg = take_message(pending.root_, pending.data_tag_);
#ifdef CASP_VMPI_CHECK
      verify_stamp_against(msg, pending.root_, pending.stamp_);
#endif
      received.push_back(std::move(msg.payload));
    }
  }
#ifdef CASP_VMPI_CHECK
  current_collective_ = saved;
#endif
  return received;
}

std::vector<Payload> Comm::allgather_payload(Payload mine) {
  std::vector<Payload> gathered(static_cast<std::size_t>(size_));
  if (size_ == 1) {
    gathered[0] = std::move(mine);
    return gathered;
  }
  {
    CASP_VMPI_COLLECTIVE(CollectiveOp::kAllgather, 0, 0);
    if (rank_ == 0) {
      gathered[0] = std::move(mine);
      for (int r = 1; r < size_; ++r)
        gathered[static_cast<std::size_t>(r)] = recv_payload(r, kGatherTag);
    } else {
      send_payload(0, kGatherTag, std::move(mine));
    }
  }
  // Rank 0 builds one packed concatenation (with per-rank length headers) —
  // the only byte copy in the collective — then every rank, rank 0
  // included, returns subviews into the shared broadcast buffer.
  Payload packed;
  if (rank_ == 0) {
    std::size_t total =
        sizeof(std::uint64_t) * static_cast<std::size_t>(size_);
    for (const Payload& p : gathered) total += p.size();
    std::vector<std::byte> buf;
    buf.reserve(total);
    for (const Payload& p : gathered) {
      const std::uint64_t len = p.size();
      static_assert(std::is_trivially_copyable_v<std::uint64_t>);
      const auto* lenp = reinterpret_cast<const std::byte*>(&len);
      buf.insert(buf.end(), lenp, lenp + sizeof(len));
      buf.insert(buf.end(), p.data(), p.data() + p.size());
    }
    packed = Payload::wrap(std::move(buf));
  }
  packed = bcast_payload(0, std::move(packed));
  std::size_t offset = 0;
  for (int r = 0; r < size_; ++r) {
    std::uint64_t len = 0;
    std::memcpy(&len, packed.data() + offset, sizeof(len));
    offset += sizeof(len);
    gathered[static_cast<std::size_t>(r)] =
        packed.subview(offset, static_cast<std::size_t>(len));
    offset += len;
  }
  return gathered;
}

std::vector<Payload> Comm::alltoall_payload(std::vector<Payload> buffers) {
  CASP_CHECK_MSG(static_cast<int>(buffers.size()) == size_,
                 "alltoall: need exactly one buffer per rank");
  CASP_VMPI_COLLECTIVE(CollectiveOp::kAlltoall, -1, 0);
  std::vector<Payload> received(static_cast<std::size_t>(size_));
  received[static_cast<std::size_t>(rank_)] =
      std::move(buffers[static_cast<std::size_t>(rank_)]);
  // Pairwise exchange: p-1 rounds of shifted partners; sends are
  // asynchronous (mailbox push) so the symmetric schedule cannot deadlock.
  for (int shift = 1; shift < size_; ++shift) {
    const int dest = (rank_ + shift) % size_;
    const int src = (rank_ - shift + size_) % size_;
    send_payload(dest, kAlltoallTag,
                 std::move(buffers[static_cast<std::size_t>(dest)]));
    received[static_cast<std::size_t>(src)] = recv_payload(src, kAlltoallTag);
  }
  return received;
}

Comm Comm::split(int color, int key) {
  // Exchange (color, key, world_rank) over the parent communicator, then
  // each member deterministically builds its child group.
  struct Entry {
    int color;
    int key;
    int parent_rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all;
  {
    CASP_VMPI_COLLECTIVE(CollectiveOp::kSplit, -1, 0);
    all = allgather_value(mine);
  }

  std::vector<Entry> group;
  for (const Entry& e : all)
    if (e.color == color) group.push_back(e);
  std::stable_sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });

  std::vector<int> members;
  int my_pos = -1;
  members.reserve(group.size());
  for (const Entry& e : group) {
    if (e.parent_rank == rank_) my_pos = static_cast<int>(members.size());
    members.push_back(members_[static_cast<std::size_t>(e.parent_rank)]);
  }
  CASP_CHECK(my_pos >= 0);

  // All members of the parent agree on split_counter_ (they all called
  // split the same number of times), so the derived context matches.
  ++split_counter_;
  const std::uint64_t child_context =
      context_ * 0x100000001b3ULL + split_counter_ * 0x9e3779b9ULL +
      static_cast<std::uint64_t>(color) + 1;

#ifdef CASP_VMPI_CHECK
  // Register the split edge so the watchdog can recognize parent/child
  // collective interleaving (idempotent: every member inserts the same
  // edge, and colors sharing a parent register side by side).
  {
    std::lock_guard<std::mutex> lock(world_->comm_tree_mutex);
    world_->comm_parent.emplace(child_context, context_);
  }
#endif

  Comm child(world_, child_context, std::move(members), my_pos);
  child.recorder_ = recorder_;
  return child;
}

}  // namespace casp::vmpi
