// Resident rank pool: runs a sequence of virtual jobs on one long-lived
// gang of rank threads instead of paying thread setup/teardown per
// vmpi::run. The service layer (src/svc) keeps one pool alive across a
// whole multi-tenant job queue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "vmpi/runtime.hpp"

namespace casp::vmpi {

namespace detail {
class JobExec;
}

/// Health of one pool rank, as believed by the service layer. The pool
/// itself keeps running every thread (a "dead" rank is a *modeled* dead
/// node); the map exists so schedulers can stop placing work on ranks whose
/// jobs reported a permanent crash and shrink the grid instead (DESIGN.md
/// §5j). `kSuspect` marks ranks implicated in watchdog verdicts (deadlock /
/// deadline) that have no proven culprit; a clean finished job clears them.
enum class RankHealth { kAlive, kSuspect, kDead };

const char* to_string(RankHealth health);

/// A gang of `size` resident worker threads, one per rank. Each run_job
/// builds a fresh detail::World (mailboxes, fault state, sched state are
/// per job — a crashed job legitimately strands messages, and nothing of
/// it may leak into the next tenant's job), dispatches the body to the
/// resident threads, and finalizes exactly like vmpi::run: same watchdog,
/// same failure classification, same CASP_VMPI_CHECK leak sweeps. Results
/// are bit-identical to a standalone vmpi::run of the same body.
///
/// Jobs run one at a time; run_job/run_supervised must be called from one
/// launcher thread (the pool serializes tenants, it does not multiplex
/// them). A job that fails with capture_failure leaves the pool healthy —
/// the next run_job starts from a clean world.
class RankPool {
 public:
  explicit RankPool(int size);
  ~RankPool();

  RankPool(const RankPool&) = delete;
  RankPool& operator=(const RankPool&) = delete;

  int size() const { return size_; }
  /// Jobs dispatched so far (supervised restarts count per attempt).
  std::uint64_t jobs_run() const { return jobs_run_; }

  /// Run one virtual job on the resident ranks. Semantics match
  /// vmpi::run(size(), body, options) exactly, including capture_failure
  /// and rethrow behaviour.
  RunResult run_job(const std::function<void(Comm&)>& body,
                    const RunOptions& options = {});

  /// Supervised restart loop on the resident ranks; semantics match
  /// vmpi::run_supervised(size(), body, options).
  SupervisedResult run_supervised(const std::function<void(Comm&)>& body,
                                  const SupervisorOptions& options = {});

  // -- Health map ----------------------------------------------------------
  // Maintained by the service layer from per-job FailureReports: a
  // "permanent_crash" marks its rank dead; watchdog verdicts without a
  // culprit mark every participating rank suspect until a clean job clears
  // them. All calls are thread-safe and rank-bounds-checked (out-of-range
  // ranks are ignored — failure reports use -1 for job-level verdicts).

  RankHealth health(int rank) const;
  void mark_dead(int rank);
  void mark_suspect(int rank);
  /// Demote every kSuspect rank back to kAlive (dead stays dead).
  void clear_suspects();
  /// World ranks currently kAlive or kSuspect (suspects are still
  /// schedulable — only proven-dead ranks are excluded), ascending.
  std::vector<int> alive_ranks() const;
  int alive_count() const;

 private:
  void worker_main(int rank);

  int size_;
  std::uint64_t jobs_run_ = 0;

  mutable std::mutex health_mutex_;
  std::vector<RankHealth> health_;

  std::mutex mutex_;
  std::condition_variable dispatch_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  /// Bumped once per dispatched job; workers run when their per-rank done
  /// generation lags it.
  std::uint64_t job_generation_ = 0;
  std::vector<std::uint64_t> done_generation_;
  int ranks_done_ = 0;
  detail::JobExec* job_ = nullptr;
  const std::function<void(Comm&)>* body_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace casp::vmpi
