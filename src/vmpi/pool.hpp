// Resident rank pool: runs a sequence of virtual jobs on one long-lived
// gang of rank threads instead of paying thread setup/teardown per
// vmpi::run. The service layer (src/svc) keeps one pool alive across a
// whole multi-tenant job queue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "vmpi/runtime.hpp"

namespace casp::vmpi {

namespace detail {
class JobExec;
}

/// Health of one pool rank, as believed by the service layer. The pool
/// itself keeps running every thread (a "dead" rank is a *modeled* dead
/// node); the map exists so schedulers can stop placing work on ranks whose
/// jobs reported a permanent crash and shrink the grid instead (DESIGN.md
/// §5j). `kSuspect` marks ranks implicated in watchdog verdicts (deadlock /
/// deadline) that have no proven culprit; a clean finished job clears them.
///
/// The membership lifecycle (DESIGN.md §5k) adds two states beyond the
/// schedulable pair: `kProbation` is a dead rank whose replacement asked to
/// re-join but has not yet passed the seeded handshake; `kQuarantined` is a
/// flapping rank that failed probation MembershipOptions::max_failures
/// times and is permanently barred from re-joining. Legal edges are
/// enforced by RankPool::transition — the single place a RankHealth state
/// is ever assigned (casp_lint: health-transition-classified):
///
///   kAlive    -> kSuspect (watchdog verdict)  | kDead (permanent crash)
///   kSuspect  -> kAlive   (clean job)         | kDead (permanent crash)
///   kDead     -> kProbation (request_rejoin)
///   kProbation-> kAlive (handshake passed)    | kProbation (failed, retry)
///              | kQuarantined (failed max_failures times) | kDead (crash)
///   kQuarantined -> (terminal)
enum class RankHealth { kAlive, kSuspect, kDead, kProbation, kQuarantined };

const char* to_string(RankHealth health);

/// Knobs for the probation handshake run by admit_probationers(). The
/// handshake is a deterministic 2-rank job between the lowest free alive
/// rank (verifier) and the candidate: the candidate regenerates a
/// splitmix64-seeded payload from (handshake_seed, rank, attempt) and
/// echoes it with its FNV-1a64 checksum; the verifier independently
/// regenerates the stream and compares both. Any mismatch fails probation.
struct MembershipOptions {
  /// Base seed mixed with (rank, attempt) into the payload stream.
  std::uint64_t handshake_seed = 0x9e3779b97f4a7c15ULL;
  /// Payload length in 64-bit words.
  int handshake_words = 64;
  /// Cumulative probation failures before a rank is quarantined for good.
  int max_failures = 3;
  /// Test/chaos hook: when set and returning true for (rank, attempt), the
  /// candidate's echoed payload is corrupted by one bit — the deterministic
  /// model of a flapping replacement node that fails its integrity check.
  std::function<bool(int rank, int attempt)> corrupt;
};

/// Handle to one in-flight asynchronous pool job (see start_job_on). The
/// launcher keeps the shared_ptr alive until finish_job returns.
struct JobTicket {
  /// Pool ranks hosting the job, in ascending order; members[i] backs the
  /// job-world rank i, so a sub-sized job sees a dense [0, members.size())
  /// world regardless of which pool ranks it landed on.
  std::vector<int> members;

  // -- internal (owned by RankPool) ---------------------------------------
  std::shared_ptr<detail::JobExec> job;
  std::function<void(Comm&)> body;
  bool capture_failure = false;
  int ranks_done = 0;  ///< guarded by the pool's dispatch mutex
};
using JobTicketPtr = std::shared_ptr<JobTicket>;

/// A gang of `size` resident worker threads, one per rank. Each job builds
/// a fresh detail::World (mailboxes, fault state, sched state are per job —
/// a crashed job legitimately strands messages, and nothing of it may leak
/// into the next tenant's job), dispatches the body to the resident
/// threads, and finalizes exactly like vmpi::run: same watchdog, same
/// failure classification, same CASP_VMPI_CHECK leak sweeps. Results are
/// bit-identical to a standalone vmpi::run of the same body.
///
/// Dispatch is per-rank slotted: start_job_on(members, ...) launches a job
/// on an explicit subset of pool ranks and returns immediately, so jobs on
/// DISJOINT member sets run concurrently (the svc scheduler's split
/// dispatch). A rank hosts at most one job at a time; start_job_on on a
/// busy rank throws. All launcher-side calls (start_job_on, finish_job,
/// run_job, admit_probationers) must come from one launcher thread.
class RankPool {
 public:
  explicit RankPool(int size);
  ~RankPool();

  RankPool(const RankPool&) = delete;
  RankPool& operator=(const RankPool&) = delete;

  int size() const { return size_; }
  /// Jobs dispatched so far (supervised restarts count per attempt).
  std::uint64_t jobs_run() const { return jobs_run_; }

  /// Run one virtual job on ALL resident ranks. Semantics match
  /// vmpi::run(size(), body, options) exactly, including capture_failure
  /// and rethrow behaviour.
  RunResult run_job(const std::function<void(Comm&)>& body,
                    const RunOptions& options = {});

  /// Supervised restart loop on the resident ranks; semantics match
  /// vmpi::run_supervised(size(), body, options).
  SupervisedResult run_supervised(const std::function<void(Comm&)>& body,
                                  const SupervisorOptions& options = {});

  /// Launch a job asynchronously on the given pool ranks (ascending,
  /// currently idle). The job world has exactly members.size() ranks;
  /// members[i] backs world rank i. Returns after dispatch — the job runs
  /// while the launcher does other work (e.g. launches a second job on a
  /// disjoint member set). Pass the ticket to finish_job to collect it.
  JobTicketPtr start_job_on(const std::vector<int>& members,
                            std::function<void(Comm&)> body,
                            const RunOptions& options = {});

  /// Block until the ticket's job finished on every member rank, then
  /// finalize it (classification / rethrow / leak sweeps) exactly like
  /// run_job. Must be called exactly once per ticket.
  RunResult finish_job(const JobTicketPtr& ticket);

  /// Pool ranks whose slot is currently idle (no in-flight job), ascending.
  std::vector<int> idle_ranks() const;

  // -- Health map ----------------------------------------------------------
  // Maintained by the service layer from per-job FailureReports: a
  // "permanent_crash" marks its rank dead; watchdog verdicts without a
  // culprit mark every participating rank suspect until a clean job clears
  // them. All calls are thread-safe and rank-bounds-checked (out-of-range
  // ranks are ignored — failure reports use -1 for job-level verdicts).

  RankHealth health(int rank) const;
  void mark_dead(int rank);
  void mark_suspect(int rank);
  /// Demote every kSuspect rank back to kAlive (dead stays dead).
  void clear_suspects();
  /// World ranks currently kAlive or kSuspect (suspects are still
  /// schedulable — dead, probationary and quarantined ranks are excluded),
  /// ascending.
  std::vector<int> alive_ranks() const;
  int alive_count() const;

  // -- Membership lifecycle (DESIGN.md §5k) --------------------------------

  /// Ask to re-admit a dead rank's replacement: kDead -> kProbation. The
  /// rank stays unschedulable until admit_probationers passes it. Returns
  /// false (and does nothing) unless the rank is currently kDead — in
  /// particular a quarantined rank can never re-enter probation.
  bool request_rejoin(int rank);
  /// Ranks currently in probation, ascending.
  std::vector<int> probation_ranks() const;
  /// Ranks quarantined for good, ascending.
  std::vector<int> quarantined_ranks() const;
  /// Cumulative probation handshake failures for one rank.
  int probation_failures(int rank) const;

  /// Run the probation handshake for every kProbation rank (ascending) that
  /// can be paired with a free alive verifier. Passing candidates become
  /// kAlive; failing ones stay kProbation until their cumulative failure
  /// count reaches options.max_failures, which quarantines them. Returns
  /// the ranks admitted this call. Launcher thread only.
  std::vector<int> admit_probationers(const MembershipOptions& options = {});

 private:
  void worker_main(int rank);
  /// The ONLY RankHealth write site: validates the membership edge (see the
  /// RankHealth comment) and applies it. Caller holds health_mutex_.
  /// Returns false and leaves the state untouched on an illegal edge.
  bool transition(int rank, RankHealth next);

  /// One rank's dispatch slot: the in-flight ticket (null = idle) and the
  /// job-world rank this pool rank backs.
  struct Slot {
    JobTicketPtr ticket;
    int local_rank = -1;
  };

  int size_;
  std::uint64_t jobs_run_ = 0;

  mutable std::mutex health_mutex_;
  std::vector<RankHealth> health_;
  std::vector<int> probation_failures_;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::vector<Slot> slots_;

  std::vector<std::thread> workers_;
};

}  // namespace casp::vmpi
