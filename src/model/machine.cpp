#include "model/machine.hpp"

namespace casp {

Machine cori_knl() {
  Machine m;
  m.name = "Cori-KNL";
  m.alpha = 2.0e-6;
  m.beta = 1.0 / 8.0e9;
  // Per *process* (16 KNL threads). The single-thread unsorted-hash rate
  // measured by bench_micro_kernels on commodity hardware is ~85 Mflop/s;
  // 16 slow KNL threads land near 1.2 Gflop/s with imperfect scaling.
  m.multiply_rate = 1.2e9;
  m.hash_merge_rate = 2.4e9;
  m.heap_merge_rate = 7.0e8;
  m.symbolic_rate = 3.6e9;
  m.cores_per_node = 68;
  m.threads_per_process = 16;
  m.memory_per_node = Bytes{112} * 1024 * 1024 * 1024;
  return m;
}

Machine cori_haswell() {
  Machine m = cori_knl();
  m.name = "Cori-Haswell";
  // Fig. 13: computation ~2.1x faster, communication ~1.4x faster (faster
  // per-core data handling around MPI calls on the same Aries fabric).
  m.multiply_rate *= 2.1;
  m.hash_merge_rate *= 2.1;
  m.heap_merge_rate *= 2.1;
  m.symbolic_rate *= 2.1;
  m.alpha /= 1.4;
  m.beta /= 1.4;
  m.cores_per_node = 32;
  m.threads_per_process = 6;
  m.memory_per_node = Bytes{128} * 1024 * 1024 * 1024;
  return m;
}

Machine cori_knl_hyperthreaded() {
  Machine m = cori_knl();
  m.name = "Cori-KNL-HT";
  // 4 hardware threads/core -> 4x processes per node at 16 threads each
  // (272 hw threads / 16 = 17 -> model as 16 processes vs 4). Per-process
  // compute drops (shared cores), per-process bandwidth drops (shared NIC).
  m.cores_per_node = 272;  // hardware threads exposed as "cores"
  m.multiply_rate *= 0.55;
  m.hash_merge_rate *= 0.55;
  m.heap_merge_rate *= 0.55;
  m.symbolic_rate *= 0.55;
  // The node NIC is shared: per-process effective bandwidth shrinks by the
  // ratio of processes per node (17 vs 4), which is what makes
  // communication time *increase* under hyperthreading (Fig. 12).
  m.beta *= static_cast<double>(m.processes_per_node()) /
            static_cast<double>(cori_knl().processes_per_node());
  return m;
}

}  // namespace casp
