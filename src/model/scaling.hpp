// Scaling studies over the cost model: the machinery behind the
// strong-scaling (Figs. 6, 7), efficiency (Fig. 9), and layer/batch sweep
// (Figs. 4, 5) experiments at paper scale.
#pragma once

#include <functional>
#include <vector>

#include "model/costs.hpp"

namespace casp {

/// The l-dependent intermediate volume: Sum over the l*stages inner-
/// dimension slices of the merged product nnz of that slice. This is the
/// tight Sum_k nnz(D^(k)) bound of Sec. IV-C — it grows with l (less
/// within-slice compression), which is exactly why AllToAll-Fiber and
/// Merge-Fiber grow with l (Table VI). Serial; use at bench scale.
Index layered_unmerged_nnz(const CscMat& a, const CscMat& b, Index layers,
                           Index stages = 1);

/// One point of a scaling study.
struct ScalingPoint {
  Index p = 1;
  Index l = 1;
  Index b = 1;
  StepSeconds steps;
  double total = 0.0;
  double speedup_vs_first = 1.0;
  double efficiency = 1.0;  ///< (P1/P2) * T(P1)/T(P2) vs the first point
};

/// Evaluate the model at each process count. Batch counts follow Eq. 2
/// from the machine's per-node memory (more nodes -> more aggregate memory
/// -> fewer batches, the paper's super-linear-speedup mechanism); pass
/// force_b > 0 to pin them instead.
std::vector<ScalingPoint> strong_scaling(const Machine& machine,
                                         const ProblemStats& stats,
                                         const std::vector<Index>& process_counts,
                                         Index layers, Index force_b = 0,
                                         bool hash_kernels = true);

/// Variant with p-dependent statistics: `stats_for(p)` supplies the
/// problem statistics at each process count. This matters because the
/// unmerged intermediate volume grows with the inner-dimension slice count
/// l*sqrt(p/l): at higher concurrency each local multiply compresses less,
/// so b shrinks *sub-linearly* in memory — the paper's observation that
/// "the number of batches decreased by less than 3x even though the memory
/// increases by 4x" (Sec. V-E).
std::vector<ScalingPoint> strong_scaling(
    const Machine& machine,
    const std::function<ProblemStats(Index p)>& stats_for,
    const std::vector<Index>& process_counts, Index layers, Index force_b = 0,
    bool hash_kernels = true);

/// Sweep (l, b) at fixed p: the Fig. 4 experiment.
std::vector<ScalingPoint> layer_batch_sweep(const Machine& machine,
                                            const ProblemStats& stats, Index p,
                                            const std::vector<Index>& layers,
                                            const std::vector<Index>& batches,
                                            bool hash_kernels = true);

/// Pick the layer count minimizing the modeled total time ("selecting the
/// optimum number of layers is challenging as it depends on the tradeoff
/// between broadcasts and fiber reduction/merge costs", Sec. V-D). Only
/// candidates with p/l a perfect square are considered; the batch count at
/// each candidate follows Eq. 2 against `total_memory` (0 = b stays 1).
/// stats_for(l) supplies layer-dependent statistics (the intermediate
/// volume grows with l). Returns the best evaluated point.
ScalingPoint choose_layers(const Machine& machine,
                           const std::function<ProblemStats(Index l)>& stats_for,
                           Index p, Bytes total_memory = 0,
                           Index max_layers = 64, bool hash_kernels = true);

}  // namespace casp
