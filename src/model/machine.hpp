// Machine descriptions for the α–β performance model.
//
// The experiments ran on NERSC Cori (Table IV): Cray Aries network with
// ~1-4 us MPI latency and ~8 GB/s effective per-process bandwidth. Exact
// constants are unknowable without the testbed; these presets are chosen
// to match the *published magnitudes* (e.g. Fig. 6's step times) and, more
// importantly, every trend the model is used to reproduce depends only on
// the scaling structure of Table II/III, not the constants. The calibrate
// bench (bench_micro_kernels) measures this host's real kernel rates for
// the measured-mode experiments.
#pragma once

#include <string>

#include "common/types.hpp"

namespace casp {

struct Machine {
  std::string name;

  // -- Network (alpha-beta model) -----------------------------------------
  /// Latency per message hop, seconds.
  double alpha = 2.0e-6;
  /// Seconds per byte transferred by one process (inverse bandwidth).
  double beta = 1.0 / 8.0e9;

  // -- Per-process compute rates -------------------------------------------
  /// Local multiply throughput, scalar multiply-accumulates per second,
  /// for the unsorted-hash kernel.
  double multiply_rate = 2.0e8;
  /// Hash-merge throughput, entries per second (linear in volume).
  double hash_merge_rate = 4.0e8;
  /// Heap-merge throughput constant: entries/s divided by lg(ways).
  double heap_merge_rate = 1.2e8;
  /// Symbolic counting throughput, flops/s (no values, cache friendlier).
  double symbolic_rate = 6.0e8;

  // -- Topology ------------------------------------------------------------
  int cores_per_node = 68;
  int threads_per_process = 16;

  /// Per-process slice of node memory, bytes, for batch-count prediction.
  Bytes memory_per_node = Bytes{112} * 1024 * 1024 * 1024;

  int processes_per_node() const {
    return std::max(1, cores_per_node / threads_per_process);
  }
};

/// Cori-KNL preset (Intel Xeon Phi 7250, 68 cores, 112 GB, Aries).
Machine cori_knl();
/// Cori-Haswell preset: ~2.1x faster compute, ~1.4x faster effective
/// communication on the same Aries network (Fig. 13's observation).
Machine cori_haswell();
/// Cori-KNL with 4-way hyperthreading: 4x the processes per node, slightly
/// lower per-process compute efficiency, more NIC contention (Fig. 12).
Machine cori_knl_hyperthreaded();

}  // namespace casp
