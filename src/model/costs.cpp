#include "model/costs.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/math.hpp"
#include "kernels/symbolic.hpp"
#include "sparse/stats.hpp"

namespace casp {

ProblemStats analyze_problem(const CscMat& a, const CscMat& b) {
  ProblemStats s;
  s.nnz_a = a.nnz();
  s.nnz_b = b.nnz();
  s.flops = multiply_flops(a, b);
  s.nnz_c = symbolic_nnz(a, b);
  s.unmerged_nnz = 0;  // caller may refine with layered_unmerged_nnz
  return s;
}

namespace {
double lg(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

StepSeconds predict_steps(const Machine& machine, const ProblemStats& stats,
                          const ModelConfig& config) {
  CASP_CHECK(config.p >= 1 && config.l >= 1 && config.b >= 1);
  const double p = static_cast<double>(config.p);
  const double l = static_cast<double>(config.l);
  const double b = static_cast<double>(config.b);
  const double q = std::sqrt(p / l);  // SUMMA stage count / row size
  const double r = static_cast<double>(kBytesPerNonzero);
  const double nnz_a = static_cast<double>(stats.nnz_a);
  const double nnz_b = static_cast<double>(stats.nnz_b);
  const double flops = static_cast<double>(stats.flops);
  const double vol = static_cast<double>(stats.effective_unmerged());

  StepSeconds t;

  // A-Bcast: b*q tree broadcasts of an nnzA/p block along each process row.
  // With sparse_comm, each stage is a request+reply round instead of a
  // tree: 2 messages per peer replace the lg(q) broadcast hops, and only
  // a_need_fraction of the block's bytes travel.
  if (config.sparse_comm) {
    t[steps::kABcast] =
        machine.alpha * b * 2.0 * q +
        machine.beta * r * b * nnz_a * (q / p) * stats.a_need_fraction;
  } else {
    t[steps::kABcast] = machine.alpha * b * q * lg(q) +
                        machine.beta * r * b * nnz_a * q / p;
  }

  // B-Bcast: same schedule but each batch carries nnzB/(b p), so the
  // bandwidth term is independent of b (Table II) while latency grows.
  t[steps::kBBcast] = machine.alpha * b * q * lg(q) +
                      machine.beta * r * nnz_b * q / p;

  // Symbolic: one extra pass of both broadcast schedules (b-independent)
  // plus the cheap counting compute and the tiny allreduce.
  t[steps::kSymbolic] = 2.0 * machine.alpha * q * lg(q) +
                        machine.beta * r * (nnz_a + nnz_b) * q / p +
                        flops / (p * machine.symbolic_rate) +
                        machine.alpha * lg(p);

  // Local-Multiply: total work is flops/p, but the accumulator cost per
  // flop grows with the in-multiply compression (flops / unmerged output):
  // with few layers each local product is higher-rank, hash tables are
  // fuller and probe chains longer. This is the Sec. V-D observation that
  // Local-Multiply *decreases* as l grows (3.6x for Friendster, 1.2x for
  // Isolates-small from l=1 to 16).
  const double local_cf = std::max(1.0, flops / std::max(1.0, vol));
  t[steps::kLocalMultiply] = flops * (1.0 + 0.8 * std::log(local_cf)) /
                             (p * machine.multiply_rate);

  // Merge-Layer: consumes every unmerged intermediate entry once; the
  // job-wide volume is bounded by flops/p per process and is invariant in
  // both b and l (Table III / Table VI's "flat" row). Heap merge pays a
  // lg(q)-way factor; hash merge is linear — the paper's
  // order-of-magnitude win (Table VII).
  const double layer_vol = flops / p;
  t[steps::kMergeLayer] =
      config.hash_kernels
          ? layer_vol / machine.hash_merge_rate
          : layer_vol * lg(q) / machine.heap_merge_rate;

  if (config.l > 1) {
    // AllToAll-Fiber: pairwise exchange of the layer-merged volume among l
    // ranks per fiber, once per batch.
    t[steps::kAllToAllFiber] =
        machine.alpha * b * (l - 1.0) + machine.beta * r * vol / p;
    const double fiber_vol = vol / p;
    t[steps::kMergeFiber] =
        config.hash_kernels
            ? fiber_vol / machine.hash_merge_rate
            : fiber_vol * lg(l) / machine.heap_merge_rate;
  } else {
    t[steps::kAllToAllFiber] = 0.0;
    t[steps::kMergeFiber] = 0.0;
  }
  return t;
}

bool sparse_exchange_pays_off(const Machine& machine, Bytes dense_bytes,
                              Bytes sparse_bytes,
                              std::uint64_t extra_messages) {
  if (sparse_bytes >= dense_bytes) return false;
  const double saved =
      machine.beta * static_cast<double>(dense_bytes - sparse_bytes);
  const double added = machine.alpha * static_cast<double>(extra_messages);
  return saved > added;
}

double total_seconds(const StepSeconds& steps) {
  double total = 0.0;
  for (const auto& [name, seconds] : steps) total += seconds;
  return total;
}

Index predict_batches(const ProblemStats& stats, Index p, Bytes total_memory) {
  if (total_memory == 0) return 1;
  const double r = static_cast<double>(kBytesPerNonzero);
  const double per_process =
      static_cast<double>(total_memory) / static_cast<double>(p);
  // Most loaded process: average share scaled by the imbalance factor.
  const double max_inputs = r *
                            static_cast<double>(stats.nnz_a + stats.nnz_b) *
                            stats.imbalance / static_cast<double>(p);
  const double max_unmerged = r *
                              static_cast<double>(stats.effective_unmerged()) *
                              stats.imbalance / static_cast<double>(p);
  const double denom = per_process - max_inputs;
  if (denom <= 0.0)
    throw MemoryError("predict_batches: inputs alone exceed memory");
  return std::max<Index>(1, static_cast<Index>(std::ceil(max_unmerged / denom)));
}

std::string format_steps(const StepSeconds& steps) {
  std::ostringstream os;
  os.precision(4);
  bool first = true;
  for (const char* name : steps::kAll) {
    const auto it = steps.find(name);
    if (it == steps.end()) continue;
    if (!first) os << " ";
    first = false;
    os << name << "=" << it->second << "s";
  }
  return os.str();
}

}  // namespace casp
