// Closed-form per-step costs of BatchedSUMMA3D — Tables II and III turned
// into code.
//
// Given problem statistics (nnz(A), nnz(B), flops, nnz(C), optionally the
// measured unmerged-intermediate volume) and a configuration (p, l, b), the
// model predicts the time of each of the seven steps on a Machine. The
// formulas are exactly the paper's:
//
//   step            latency (total)          bandwidth (total)    compute
//   A-Bcast         a*b*sqrt(p/l)*lg(p/l)    B*b*nnzA/sqrt(pl)    —
//   B-Bcast         a*b*sqrt(p/l)*lg(p/l)    B*nnzB/sqrt(pl)      —
//   AllToAll-Fiber  a*b*l                    B*vol/p              —
//   Symbolic        bcast terms with b=1     as bcasts            flops/p (cheap)
//   Local-Multiply  —                        —                    flops/p
//   Merge-Layer     —                        —                    vol/p (hash) or vol/p*lg(q) (heap)
//   Merge-Fiber     —                        —                    volF/p (hash) or volF/p*lg(l) (heap)
//
// where vol = the unmerged intermediate nonzeros (<= flops; the paper's
// bandwidth bound uses flops and notes Sum_k nnz(D^(k)) is tighter — pass
// `unmerged_nnz` from Symbolic3D to use the tight value).
#pragma once

#include <map>
#include <string>

#include "model/machine.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

/// Global problem statistics driving the model.
struct ProblemStats {
  Index nnz_a = 0;
  Index nnz_b = 0;
  Index flops = 0;   ///< scalar multiplications in A*B
  Index nnz_c = 0;   ///< merged output nonzeros
  /// Sum over processes/stages of unmerged intermediate nonzeros; defaults
  /// to flops when unknown (the loose Table II bound).
  Index unmerged_nnz = 0;
  /// Load imbalance factor: max-per-process / average-per-process for the
  /// unmerged output (1.0 = perfectly balanced). Scales the batch count.
  double imbalance = 1.0;
  /// Fraction of A-block bytes the sparse exchange actually ships
  /// (shipped / logical from the traffic ledger, or an estimate). Only read
  /// when ModelConfig::sparse_comm is set; 1.0 = no savings.
  double a_need_fraction = 1.0;

  Index effective_unmerged() const {
    return unmerged_nnz > 0 ? unmerged_nnz : flops;
  }
};

/// Extract ProblemStats by analyzing the actual matrices (serial; use at
/// bench scale). Computes flops, nnz_c and the unmerged volume for the
/// given layer count.
ProblemStats analyze_problem(const CscMat& a, const CscMat& b);

/// Grid/batch configuration to evaluate.
struct ModelConfig {
  Index p = 1;   ///< total processes
  Index l = 1;   ///< layers
  Index b = 1;   ///< batches
  bool hash_kernels = true;  ///< this paper's kernels vs prior heap kernels
  /// Model the sparsity-aware A exchange (summa/sparse_comm.hpp) instead of
  /// the dense A-Bcast: the tree broadcast's lg(q) latency becomes the
  /// request+reply round's 2 messages per peer, and the bandwidth term is
  /// scaled by ProblemStats::a_need_fraction.
  bool sparse_comm = false;
};

/// Per-step predicted seconds, keyed by the steps:: names.
using StepSeconds = std::map<std::string, double>;

/// Predict every step of BatchedSUMMA3D. All costs are per-process
/// critical-path times for the whole multiplication (all batches).
StepSeconds predict_steps(const Machine& machine, const ProblemStats& stats,
                          const ModelConfig& config);

/// Sum of all step times.
double total_seconds(const StepSeconds& steps);

/// Fallback predicate for the sparse exchange (DESIGN.md Sec. 5h): shipping
/// `sparse_bytes` in `extra_messages` additional messages beats shipping
/// `dense_bytes` in one only when the bandwidth saved exceeds the latency
/// added. The runtime packer consults this when given a Machine; with no
/// Machine it falls back on the pure byte comparison (the in-process
/// transport has no per-message latency).
bool sparse_exchange_pays_off(const Machine& machine, Bytes dense_bytes,
                              Bytes sparse_bytes,
                              std::uint64_t extra_messages);

/// Eq. 2 / Alg. 3 line 12: predicted batch count for aggregate memory M
/// (bytes) on p processes with l layers. Mirrors Symbolic3D but uses the
/// model's statistics instead of a distributed run. Throws MemoryError if
/// inputs alone do not fit.
Index predict_batches(const ProblemStats& stats, Index p, Bytes total_memory);

/// Pretty one-line rendering ("A-Bcast=1.23s B-Bcast=0.04s ...").
std::string format_steps(const StepSeconds& steps);

}  // namespace casp
