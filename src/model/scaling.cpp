#include "model/scaling.hpp"

#include "common/error.hpp"
#include "common/math.hpp"
#include "kernels/symbolic.hpp"

namespace casp {

Index layered_unmerged_nnz(const CscMat& a, const CscMat& b, Index layers,
                           Index stages) {
  CASP_CHECK(a.ncols() == b.nrows());
  CASP_CHECK(layers >= 1 && stages >= 1);
  const Index slices = layers * stages;
  const Index inner = a.ncols();
  // Row-slicing B is expensive in CSC; transpose once and slice columns.
  const CscMat bt = b.transpose();
  Index total = 0;
  for (Index s = 0; s < slices; ++s) {
    const Index lo = part_low(s, slices, inner);
    const Index hi = part_low(s + 1, slices, inner);
    if (lo == hi) continue;
    const CscMat a_slice = a.slice_cols(lo, hi);
    // rows lo..hi of B = columns lo..hi of B^T, transposed back.
    const CscMat b_slice = bt.slice_cols(lo, hi).transpose();
    total += symbolic_nnz(a_slice, b_slice);
  }
  return total;
}

std::vector<ScalingPoint> strong_scaling(const Machine& machine,
                                         const ProblemStats& stats,
                                         const std::vector<Index>& process_counts,
                                         Index layers, Index force_b,
                                         bool hash_kernels) {
  return strong_scaling(
      machine, [&stats](Index) { return stats; }, process_counts, layers,
      force_b, hash_kernels);
}

std::vector<ScalingPoint> strong_scaling(
    const Machine& machine,
    const std::function<ProblemStats(Index p)>& stats_for,
    const std::vector<Index>& process_counts, Index layers, Index force_b,
    bool hash_kernels) {
  std::vector<ScalingPoint> series;
  for (Index p : process_counts) {
    const ProblemStats stats = stats_for(p);
    ScalingPoint point;
    point.p = p;
    point.l = layers;
    if (force_b > 0) {
      point.b = force_b;
    } else {
      const Index nodes =
          ceil_div(p, static_cast<Index>(machine.processes_per_node()));
      const Bytes memory = static_cast<Bytes>(nodes) * machine.memory_per_node;
      point.b = predict_batches(stats, p, memory);
    }
    ModelConfig config{p, layers, point.b, hash_kernels};
    point.steps = predict_steps(machine, stats, config);
    point.total = total_seconds(point.steps);
    series.push_back(std::move(point));
  }
  if (!series.empty()) {
    const double t0 = series.front().total;
    const double p0 = static_cast<double>(series.front().p);
    for (ScalingPoint& point : series) {
      point.speedup_vs_first = t0 / point.total;
      point.efficiency =
          (p0 / static_cast<double>(point.p)) * (t0 / point.total);
    }
  }
  return series;
}

ScalingPoint choose_layers(const Machine& machine,
                           const std::function<ProblemStats(Index l)>& stats_for,
                           Index p, Bytes total_memory, Index max_layers,
                           bool hash_kernels) {
  ScalingPoint best;
  bool found = false;
  for (Index l = 1; l <= std::min(max_layers, p); l *= 2) {
    if (p % l != 0) continue;
    if (exact_isqrt(p / l) <= 0) continue;
    const ProblemStats stats = stats_for(l);
    ScalingPoint point;
    point.p = p;
    point.l = l;
    point.b = total_memory == 0 ? 1 : predict_batches(stats, p, total_memory);
    point.steps =
        predict_steps(machine, stats, ModelConfig{p, l, point.b, hash_kernels});
    point.total = total_seconds(point.steps);
    if (!found || point.total < best.total) {
      best = point;
      found = true;
    }
  }
  CASP_CHECK_MSG(found, "choose_layers: no valid layer count for p=" << p);
  return best;
}

std::vector<ScalingPoint> layer_batch_sweep(const Machine& machine,
                                            const ProblemStats& stats, Index p,
                                            const std::vector<Index>& layers,
                                            const std::vector<Index>& batches,
                                            bool hash_kernels) {
  std::vector<ScalingPoint> series;
  for (Index l : layers) {
    for (Index b : batches) {
      ScalingPoint point;
      point.p = p;
      point.l = l;
      point.b = b;
      point.steps = predict_steps(machine, stats, ModelConfig{p, l, b, hash_kernels});
      point.total = total_seconds(point.steps);
      series.push_back(std::move(point));
    }
  }
  return series;
}

}  // namespace casp
